(* Parser unit tests: shapes of declarations, statements, expressions. *)

open Jir
open Jir.Ast

let parse_class src =
  match Parser.parse src with
  | [ Class c ] -> c
  | _ -> Alcotest.fail "expected a single class"

let only_method c =
  match c.c_methods with
  | [ m ] -> m
  | _ -> Alcotest.fail "expected a single method"

let body m =
  match m.md_body with
  | Some b -> b
  | None -> Alcotest.fail "expected a method body"

let test_class_shape () =
  let c =
    parse_class
      "public class Foo extends Bar implements A, B {\n\
      \  private String name;\n\
      \  static int count = 0;\n\
      \  public Foo(String n) { this.name = n; }\n\
      \  public String getName() { return name; }\n\
       }"
  in
  Alcotest.(check string) "name" "Foo" c.c_name;
  Alcotest.(check (option string)) "super" (Some "Bar") c.c_super;
  Alcotest.(check (list string)) "ifaces" [ "A"; "B" ] c.c_ifaces;
  Alcotest.(check int) "fields" 2 (List.length c.c_fields);
  Alcotest.(check int) "ctors" 1 (List.length c.c_ctors);
  Alcotest.(check int) "methods" 1 (List.length c.c_methods)

let test_interface () =
  match Parser.parse "interface I extends J { String f(int x); void g(); }" with
  | [ Interface i ] ->
    Alcotest.(check string) "name" "I" i.i_name;
    Alcotest.(check (list string)) "supers" [ "J" ] i.i_supers;
    Alcotest.(check int) "methods" 2 (List.length i.i_methods)
  | _ -> Alcotest.fail "expected interface"

let test_precedence () =
  let c = parse_class "class C { int f() { return 1 + 2 * 3; } }" in
  match body (only_method c) with
  | [ { s = Return (Some { e = Binary (Add, _, { e = Binary (Mul, _, _); _ }); _ });
       _ } ] -> ()
  | _ -> Alcotest.fail "expected 1 + (2 * 3)"

let test_cast_vs_paren () =
  let c =
    parse_class
      "class C { void f(Object o, int a, int b) { String s = (String) o; int x = (a) + b; } }"
  in
  (match body (only_method c) with
   | [ { s = Var_decl (_, "s", Some { e = Cast (Tclass "String", _); _ }); _ };
       { s = Var_decl (_, "x", Some { e = Binary (Add, { e = Var "a"; _ }, _); _ });
         _ } ] -> ()
   | _ -> Alcotest.fail "cast/paren disambiguation failed")

let test_string_concat () =
  let c = parse_class {|class C { String f(String a) { return "x" + a + 1; } }|} in
  match body (only_method c) with
  | [ { s = Return (Some { e = Binary (Add, _, _); _ }); _ } ] -> ()
  | _ -> Alcotest.fail "expected nested +"

let test_call_forms () =
  let c =
    parse_class
      "class C { void f(C o) { g(); o.g(); C.h(); this.g(); super.g(); } \
       void g() {} static void h() {} }"
  in
  let stmts =
    match c.c_methods with
    | m :: _ -> body m
    | [] -> Alcotest.fail "no methods"
  in
  let kinds =
    List.filter_map
      (fun s ->
         match s.s with
         | Expr { e = Call { recv; _ }; _ } ->
           Some
             (match recv with
              | Implicit -> "implicit"
              | On { e = Var _; _ } -> "on-var"
              | On { e = This; _ } -> "on-this"
              | On _ -> "on"
              | Cls _ -> "static"
              | Super -> "super")
         | _ -> None)
      stmts
  in
  Alcotest.(check (list string)) "call kinds"
    [ "implicit"; "on-var"; "static"; "on-this"; "super" ] kinds

let test_control_flow () =
  let c =
    parse_class
      "class C { int f(int n) {\n\
      \  int s = 0;\n\
      \  for (int i = 0; i < n; i++) { s += i; }\n\
      \  while (s > 100) { s = s - 1; if (s == 55) break; else continue; }\n\
      \  return s; } }"
  in
  Alcotest.(check int) "stmt count" 4 (List.length (body (only_method c)))

let test_try_catch () =
  let c =
    parse_class
      "class C { void f() { try { g(); } catch (Exception e) { h(e); } \
       catch (Error x) { } } void g() {} void h(Object o) {} }"
  in
  match body (List.hd c.c_methods) with
  | [ { s = Try (_, clauses); _ } ] ->
    Alcotest.(check (list string)) "exn classes" [ "Exception"; "Error" ]
      (List.map (fun (cls, _, _) -> cls) clauses)
  | _ -> Alcotest.fail "expected try"

let test_new_and_arrays () =
  let c =
    parse_class
      "class C { void f() { Object[] a = new Object[10]; a[0] = new C(); \
       int n = a.length; Object o = a[0]; } }"
  in
  match body (only_method c) with
  | [ { s = Var_decl (Tarray (Tclass "Object"), "a", Some { e = New_array _; _ }); _ };
      { s = Expr { e = Assign ({ e = Array_index _; _ }, { e = New ("C", []); _ }); _ }; _ };
      { s = Var_decl (Tint, "n", Some { e = Field_access (_, "length"); _ }); _ };
      { s = Var_decl (_, "o", Some { e = Array_index _; _ }); _ } ] -> ()
  | _ -> Alcotest.fail "array forms failed"

let test_ternary_instanceof () =
  let c =
    parse_class
      "class C { Object f(Object o) { return o instanceof C ? o : null; } }"
  in
  match body (only_method c) with
  | [ { s = Return (Some { e = Cond ({ e = Instance_of _; _ }, _, _); _ }); _ } ] -> ()
  | _ -> Alcotest.fail "ternary/instanceof failed"

let test_super_ctor_chain () =
  let c =
    parse_class "class C extends D { C(int x) { super(x); } }"
  in
  match c.c_ctors with
  | [ { cd_body = [ { s = Expr { e = Call { recv = Super; mname = "<init>"; args = [ _ ] }; _ }; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "super(...) chaining failed"

let test_parse_errors () =
  let fails src =
    match Parser.parse src with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  fails "class {";
  fails "class C { void f( { } }";
  fails "class C { int x = ; }";
  fails "interface I { void f() { } }";
  fails "class C { void f() { try { } } }"

let suite =
  [ Alcotest.test_case "class shape" `Quick test_class_shape;
    Alcotest.test_case "interface" `Quick test_interface;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "cast vs paren" `Quick test_cast_vs_paren;
    Alcotest.test_case "string concat" `Quick test_string_concat;
    Alcotest.test_case "call forms" `Quick test_call_forms;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "try/catch" `Quick test_try_catch;
    Alcotest.test_case "new and arrays" `Quick test_new_and_arrays;
    Alcotest.test_case "ternary and instanceof" `Quick test_ternary_instanceof;
    Alcotest.test_case "super ctor chaining" `Quick test_super_ctor_chain;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
