(* End-to-end taint analysis tests over small MJava programs, covering each
   code-modeling feature of the paper: direct flows, sanitizers, taint
   carriers, container flows with constant keys, reflection, exceptions-as-
   sources, Struts forms, EJB dispatch. *)

open Core

let analyze ?(algorithm = Config.Hybrid_unbounded) ?(descriptor = "") srcs =
  Taj.run
    (Taj.load { Taj.name = "test"; app_sources = srcs; descriptor })
    (Config.preset algorithm)

let completed a =
  match a.Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete reason -> Alcotest.failf "did not complete: %s" reason

let issues_of ?algorithm ?descriptor srcs =
  let c = completed (analyze ?algorithm ?descriptor srcs) in
  c.Taj.report.Report.issues

let count_issues issue reports =
  List.length (List.filter (fun ir -> ir.Report.ir_issue = issue) reports)

(* ------------------------------------------------------------------ *)

let direct_xss =
  {|class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String name = req.getParameter("name");
        PrintWriter w = resp.getWriter();
        w.println(name);
      }
    }|}

let test_direct_xss () =
  let issues = issues_of [ direct_xss ] in
  Alcotest.(check int) "one xss" 1 (count_issues Rules.Xss issues)

let test_sanitized_flow () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String name = req.getParameter("name");
              PrintWriter w = resp.getWriter();
              w.println(URLEncoder.encode(name));
            }
          }|} ]
  in
  Alcotest.(check int) "no xss" 0 (count_issues Rules.Xss issues)

let test_untainted_flow () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              PrintWriter w = resp.getWriter();
              w.println("static content");
            }
          }|} ]
  in
  Alcotest.(check int) "no issues at all" 0 (List.length issues)

let test_flow_through_strcat () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String name = req.getParameter("name");
              String greeting = "hello, " + name + "!";
              resp.getWriter().println(greeting);
            }
          }|} ]
  in
  Alcotest.(check int) "xss through concat" 1 (count_issues Rules.Xss issues)

let test_flow_through_helper_method () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            String decorate(String s) { return "[" + s + "]"; }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String name = req.getParameter("name");
              resp.getWriter().println(this.decorate(name));
            }
          }|} ]
  in
  Alcotest.(check int) "xss through helper" 1 (count_issues Rules.Xss issues)

let test_sqli () =
  let issues =
    issues_of
      [ {|class Login extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String user = req.getParameter("user");
              Connection conn = DriverManager.getConnection("jdbc:db");
              Statement st = conn.createStatement();
              st.executeQuery("SELECT * FROM users WHERE name='" + user + "'");
            }
          }|} ]
  in
  Alcotest.(check int) "one sqli" 1 (count_issues Rules.Sqli issues)

let test_sqli_escaped () =
  let issues =
    issues_of
      [ {|class Login extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String user = Sanitizer.escapeSql(req.getParameter("user"));
              Connection conn = DriverManager.getConnection("jdbc:db");
              Statement st = conn.createStatement();
              st.executeQuery("SELECT * FROM users WHERE name='" + user + "'");
            }
          }|} ]
  in
  Alcotest.(check int) "sql escaped" 0 (count_issues Rules.Sqli issues)

(* taint carrier: tainted data inside an object passed to a sink (§4.1.1) *)
let test_taint_carrier () =
  let issues =
    issues_of
      [ {|class Wrapper {
            String s;
            public Wrapper(String s) { this.s = s; }
            public String toString() { return this.s; }
          }
          class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Wrapper w = new Wrapper(req.getParameter("name"));
              resp.getWriter().println(w);
            }
          }|} ]
  in
  Alcotest.(check bool) "carrier flagged" true
    (count_issues Rules.Xss issues >= 1)

let test_container_flow () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              ArrayList l = new ArrayList();
              l.add(req.getParameter("name"));
              String s = (String) l.get(0);
              resp.getWriter().println(s);
            }
          }|} ]
  in
  Alcotest.(check int) "xss through list" 1 (count_issues Rules.Xss issues)

(* constant-key dictionary precision (§4.2.1): o1 must not flow to o2 *)
let test_dict_constant_keys_precise () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              HashMap m = new HashMap();
              m.put("tainted", req.getParameter("name"));
              m.put("clean", "safe");
              String s = (String) m.get("clean");
              resp.getWriter().println(s);
            }
          }|} ]
  in
  Alcotest.(check int) "no xss via distinct constant key" 0
    (count_issues Rules.Xss issues)

let test_dict_constant_keys_flow () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              HashMap m = new HashMap();
              m.put("tainted", req.getParameter("name"));
              String s = (String) m.get("tainted");
              resp.getWriter().println(s);
            }
          }|} ]
  in
  Alcotest.(check int) "xss via same constant key" 1
    (count_issues Rules.Xss issues)

let test_dict_unknown_key_conservative () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              HashMap m = new HashMap();
              m.put("tainted", req.getParameter("name"));
              String k = req.getQueryString();
              String s = (String) m.get(k);
              resp.getWriter().println(s);
            }
          }|} ]
  in
  Alcotest.(check bool) "unknown key sees constant puts" true
    (count_issues Rules.Xss issues >= 1)

(* exceptions as information-leak sources (§4.1.2) *)
let test_exception_leak () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            void risky() { throw new Exception("internal state"); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              try { this.risky(); }
              catch (Exception e) {
                resp.getWriter().println(e);
              }
            }
          }|} ]
  in
  Alcotest.(check bool) "info leak" true
    (count_issues Rules.Info_leak issues >= 1)

let test_info_leak_via_getmessage () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            void risky() { throw new Exception("internal state"); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              try { this.risky(); }
              catch (Exception e) {
                resp.getWriter().println(e.getMessage());
              }
            }
          }|} ]
  in
  Alcotest.(check bool) "getMessage leak" true
    (count_issues Rules.Info_leak issues >= 1)

let test_command_injection () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String cmd = req.getParameter("cmd");
              Runtime.getRuntime().exec(cmd);
            }
          }|} ]
  in
  Alcotest.(check int) "cmd injection" 1
    (count_issues Rules.Command_injection issues)

let test_malicious_file () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String path = req.getParameter("path");
              FileInputStream in = new FileInputStream(path);
            }
          }|} ]
  in
  Alcotest.(check int) "malicious file" 1
    (count_issues Rules.Malicious_file issues)

let test_nested_containers () =
  (* a list stored inside a map: two layers of container modeling *)
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              ArrayList l = new ArrayList();
              l.add(req.getParameter("x"));
              HashMap m = new HashMap();
              m.put("items", l);
              ArrayList back = (ArrayList) m.get("items");
              resp.getWriter().println((String) back.get(0));
            }
          }|} ]
  in
  Alcotest.(check int) "taint through nested containers" 1
    (count_issues Rules.Xss issues)

let test_parameter_values_array () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String[] vs = req.getParameterValues("x");
              resp.getWriter().println(vs[0]);
            }
          }|} ]
  in
  Alcotest.(check bool) "array-returning source" true
    (count_issues Rules.Xss issues >= 1)

let test_sanitize_after_sink_is_too_late () =
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String x = req.getParameter("x");
              PrintWriter w = resp.getWriter();
              w.println(x);
              String clean = URLEncoder.encode(x);
              w.println(clean);
            }
          }|} ]
  in
  (* the first println is vulnerable; sanitizing afterwards doesn't help *)
  Alcotest.(check int) "early sink still flagged" 1
    (count_issues Rules.Xss issues)

let test_two_rules_one_flow () =
  (* the same tainted value reaches an XSS sink and a SQLi sink: one issue
     per rule, not merged across issue types *)
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String x = req.getParameter("x");
              resp.getWriter().println(x);
              Connection c = DriverManager.getConnection("jdbc:d");
              c.createStatement().executeQuery(x);
            }
          }|} ]
  in
  Alcotest.(check int) "xss" 1 (count_issues Rules.Xss issues);
  Alcotest.(check int) "sqli" 1 (count_issues Rules.Sqli issues)

let test_stringbuffer_shared_between_flows () =
  (* two appends into one buffer: the clean prefix doesn't mask the
     tainted suffix *)
  let issues =
    issues_of
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              StringBuffer sb = new StringBuffer();
              sb.append("prefix");
              sb.append(req.getParameter("x"));
              resp.getWriter().println(sb.toString());
            }
          }|} ]
  in
  Alcotest.(check int) "buffer flow" 1 (count_issues Rules.Xss issues)

let suite =
  [ Alcotest.test_case "direct xss" `Quick test_direct_xss;
    Alcotest.test_case "nested containers" `Quick test_nested_containers;
    Alcotest.test_case "parameter values array" `Quick
      test_parameter_values_array;
    Alcotest.test_case "sanitize after sink" `Quick
      test_sanitize_after_sink_is_too_late;
    Alcotest.test_case "two rules one flow" `Quick test_two_rules_one_flow;
    Alcotest.test_case "stringbuffer shared" `Quick
      test_stringbuffer_shared_between_flows;
    Alcotest.test_case "sanitized flow" `Quick test_sanitized_flow;
    Alcotest.test_case "untainted flow" `Quick test_untainted_flow;
    Alcotest.test_case "flow through strcat" `Quick test_flow_through_strcat;
    Alcotest.test_case "flow through helper" `Quick test_flow_through_helper_method;
    Alcotest.test_case "sqli" `Quick test_sqli;
    Alcotest.test_case "sqli escaped" `Quick test_sqli_escaped;
    Alcotest.test_case "taint carrier" `Quick test_taint_carrier;
    Alcotest.test_case "container flow" `Quick test_container_flow;
    Alcotest.test_case "dict constant keys precise" `Quick test_dict_constant_keys_precise;
    Alcotest.test_case "dict constant keys flow" `Quick test_dict_constant_keys_flow;
    Alcotest.test_case "dict unknown key" `Quick test_dict_unknown_key_conservative;
    Alcotest.test_case "exception leak" `Quick test_exception_leak;
    Alcotest.test_case "getMessage leak" `Quick test_info_leak_via_getmessage;
    Alcotest.test_case "command injection" `Quick test_command_injection;
    Alcotest.test_case "malicious file" `Quick test_malicious_file ]
