(* Backward thin-slicing tests: producer discovery through locals, calls,
   heap and containers; base pointers excluded; budget handling. *)

open Core

let completed srcs =
  let loaded =
    Taj.load { Taj.name = "bw"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> (loaded, c)
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

(* find the single sink call stmt (println) and backward-slice its arg *)
let slice_of_sink ?max_stmts srcs =
  let loaded, c = completed srcs in
  let b = c.Taj.builder in
  let sink =
    List.find_map
      (fun (s, (call : Jir.Tac.call)) ->
         if String.equal call.Jir.Tac.target.Jir.Tac.rname "println"
            && not (Sdg.Builder.node_meth b s.Sdg.Stmt.node).Jir.Tac.m_library
         then Some s
         else None)
      (Sdg.Builder.all_call_stmts b)
  in
  match sink with
  | Some s ->
    ( b,
      Sdg.Backward.slice b ~table:loaded.Taj.program.Jir.Program.table
        ~from:s ~arg:1 ?max_stmts () )
  | None -> Alcotest.fail "no sink found"

let sources_in b r =
  Sdg.Backward.source_endpoints b r ~is_source:(fun target ->
      String.equal target.Jir.Tac.rname "getParameter")

let test_backward_finds_source () =
  let b, r =
    slice_of_sink
      [ {|class P extends HttpServlet {
            String hop(String s) { return s; }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String x = this.hop(req.getParameter("a"));
              resp.getWriter().println(x);
            }
          }|} ]
  in
  Alcotest.(check int) "one contributing source" 1
    (List.length (sources_in b r));
  Alcotest.(check bool) "slice is not trivial" true
    (Sdg.Stmt.Set.cardinal r.Sdg.Backward.slice >= 3)

let test_backward_through_heap () =
  let b, r =
    slice_of_sink
      [ {|class Cell { String v; }
          class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Cell c = new Cell();
              c.v = req.getParameter("a");
              resp.getWriter().println(c.v);
            }
          }|} ]
  in
  Alcotest.(check int) "source found through store/load" 1
    (List.length (sources_in b r))

let test_backward_through_container () =
  let b, r =
    slice_of_sink
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              HashMap m = new HashMap();
              m.put("k", req.getParameter("a"));
              resp.getWriter().println((String) m.get("k"));
            }
          }|} ]
  in
  Alcotest.(check int) "source found through dictionary" 1
    (List.length (sources_in b r))

let test_backward_excludes_unrelated () =
  let b, r =
    slice_of_sink
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String unrelated = req.getParameter("other");
              resp.getWriter().println("fixed");
              resp.setContentType(unrelated);
            }
          }|} ]
  in
  Alcotest.(check int) "constant sink has no source producers" 0
    (List.length (sources_in b r));
  Alcotest.(check bool) "endpoint is the literal" true
    (List.exists
       (fun s ->
          match Sdg.Builder.instr_of b s with
          | Some (Jir.Tac.Const (_, Jir.Tac.Cstr "fixed")) -> true
          | _ -> false)
       r.Sdg.Backward.endpoints)

let test_backward_two_producers () =
  let b, r =
    slice_of_sink
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String x = req.getParameter("a") + req.getHeader("b");
              resp.getWriter().println(x);
            }
          }|} ]
  in
  (* getParameter and getHeader both contribute *)
  let all_sources =
    Sdg.Backward.source_endpoints b r ~is_source:(fun target ->
        List.mem target.Jir.Tac.rname [ "getParameter"; "getHeader" ])
  in
  Alcotest.(check int) "two producers" 2 (List.length all_sources)

let test_backward_budget () =
  let _, r =
    slice_of_sink ~max_stmts:2
      [ {|class P extends HttpServlet {
            String h1(String s) { return s; }
            String h2(String s) { return this.h1(s); }
            String h3(String s) { return this.h2(s); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(this.h3(req.getParameter("a")));
            }
          }|} ]
  in
  Alcotest.(check bool) "truncated" true r.Sdg.Backward.truncated;
  Alcotest.(check bool) "bounded" true
    (Sdg.Stmt.Set.cardinal r.Sdg.Backward.slice <= 3)

let suite =
  [ Alcotest.test_case "finds source" `Quick test_backward_finds_source;
    Alcotest.test_case "through heap" `Quick test_backward_through_heap;
    Alcotest.test_case "through container" `Quick test_backward_through_container;
    Alcotest.test_case "excludes unrelated" `Quick test_backward_excludes_unrelated;
    Alcotest.test_case "two producers" `Quick test_backward_two_producers;
    Alcotest.test_case "budget" `Quick test_backward_budget ]
