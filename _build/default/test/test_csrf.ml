(* CSRF-detection tests (§9 future-work extension). *)

open Core

let findings srcs =
  let loaded =
    Taj.load { Taj.name = "csrf"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c ->
    Csrf.detect ~prog:loaded.Taj.program ~builder:c.Taj.builder c.Taj.andersen
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let test_get_mutation_flagged () =
  let fs =
    findings
      [ {|class DeleteServlet extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Connection c = DriverManager.getConnection("jdbc:db");
              Statement st = c.createStatement();
              st.executeUpdate("DELETE FROM posts WHERE id=1");
            }
          }|} ]
  in
  Alcotest.(check int) "one finding" 1 (List.length fs);
  (match fs with
   | [ f ] ->
     Alcotest.(check string) "entry" "DeleteServlet.doGet/3" f.Csrf.cf_entry;
     Alcotest.(check string) "target" "Statement.executeUpdate/2"
       f.Csrf.cf_target
   | _ -> ())

let test_mutation_through_helper_flagged () =
  let fs =
    findings
      [ {|class Dao {
            void purge(Statement st) { st.executeUpdate("DELETE FROM t"); }
          }
          class AdminServlet extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Connection c = DriverManager.getConnection("jdbc:db");
              Dao dao = new Dao();
              dao.purge(c.createStatement());
            }
          }|} ]
  in
  Alcotest.(check int) "finding through helper" 1 (List.length fs)

let test_token_check_suppresses () =
  let fs =
    findings
      [ {|class SafeServlet extends HttpServlet {
            boolean checkToken(HttpServletRequest req) {
              HttpSession s = req.getSession();
              String t = (String) s.getAttribute("csrf_token");
              return t.equals(req.getParameter("token"));
            }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              if (this.checkToken(req)) {
                Connection c = DriverManager.getConnection("jdbc:db");
                Statement st = c.createStatement();
                st.executeUpdate("DELETE FROM posts WHERE id=1");
              }
            }
          }|} ]
  in
  Alcotest.(check int) "token check suppresses" 0 (List.length fs)

let test_read_only_get_clean () =
  let fs =
    findings
      [ {|class ViewServlet extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Connection c = DriverManager.getConnection("jdbc:db");
              Statement st = c.createStatement();
              ResultSet rs = st.executeQuery("SELECT * FROM posts");
              resp.getWriter().println(URLEncoder.encode(rs.getString("title")));
            }
          }|} ]
  in
  Alcotest.(check int) "reads are fine" 0 (List.length fs)

let test_post_mutation_not_flagged () =
  let fs =
    findings
      [ {|class PostServlet extends HttpServlet {
            public void doPost(HttpServletRequest req, HttpServletResponse resp) {
              Connection c = DriverManager.getConnection("jdbc:db");
              Statement st = c.createStatement();
              st.executeUpdate("INSERT INTO posts VALUES (1)");
            }
          }|} ]
  in
  Alcotest.(check int) "POST handlers are out of scope" 0 (List.length fs)

let suite =
  [ Alcotest.test_case "GET mutation flagged" `Quick test_get_mutation_flagged;
    Alcotest.test_case "mutation through helper" `Quick
      test_mutation_through_helper_flagged;
    Alcotest.test_case "token check suppresses" `Quick
      test_token_check_suppresses;
    Alcotest.test_case "read-only GET clean" `Quick test_read_only_get_clean;
    Alcotest.test_case "POST mutation not flagged" `Quick
      test_post_mutation_not_flagged ]
