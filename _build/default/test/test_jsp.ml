(* JSP translation tests: template chunking, servlet generation, and taint
   flow through generated pages. *)

open Core

let analyze_jsp ~name page =
  let src = Models.Jsp.translate ~name page in
  let loaded =
    Taj.load { Taj.name; app_sources = [ src ]; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let count issue c =
  List.length
    (List.filter (fun ir -> ir.Report.ir_issue = issue) c.Taj.report.Report.issues)

let test_chunking () =
  let chunks =
    Models.Jsp.parse_chunks
      "<html><%= request.getParameter(\"x\") %><% int i = 0; %>tail<%-- note --%>"
  in
  match chunks with
  | [ Models.Jsp.Text "<html>";
      Models.Jsp.Expr "request.getParameter(\"x\")";
      Models.Jsp.Scriptlet "int i = 0;";
      Models.Jsp.Text "tail" ] -> ()
  | _ -> Alcotest.failf "unexpected chunks (%d)" (List.length chunks)

let test_unterminated_tag () =
  match Models.Jsp.parse_chunks "<% broken" with
  | exception Models.Jsp.Jsp_error _ -> ()
  | _ -> Alcotest.fail "expected Jsp_error"

let test_reflected_xss () =
  let c =
    analyze_jsp ~name:"HelloJsp"
      {|<html><body>
         <h1>Hello, <%= request.getParameter("name") %>!</h1>
         </body></html>|}
  in
  Alcotest.(check int) "one xss" 1 (count Rules.Xss c)

let test_static_page_clean () =
  let c = analyze_jsp ~name:"StaticJsp" "<html><body>Nothing here.</body></html>" in
  Alcotest.(check int) "no issues" 0 (List.length c.Taj.report.Report.issues)

let test_scriptlet_flow () =
  let c =
    analyze_jsp ~name:"ScriptletJsp"
      {|<% String user = request.getParameter("user"); %>
        <p>Welcome back, <%= user %></p>|}
  in
  Alcotest.(check int) "xss through scriptlet local" 1 (count Rules.Xss c)

let test_sanitized_expression () =
  let c =
    analyze_jsp ~name:"CleanJsp"
      {|<p><%= URLEncoder.encode(request.getParameter("q")) %></p>|}
  in
  Alcotest.(check int) "encoded expression is clean" 0 (count Rules.Xss c)

let test_session_in_jsp () =
  let c =
    analyze_jsp ~name:"SessionJsp"
      {|<% session.setAttribute("who", request.getParameter("who")); %>
        <p><%= (String) session.getAttribute("who") %></p>|}
  in
  Alcotest.(check int) "session readback tainted" 1 (count Rules.Xss c)

let suite =
  [ Alcotest.test_case "chunking" `Quick test_chunking;
    Alcotest.test_case "unterminated tag" `Quick test_unterminated_tag;
    Alcotest.test_case "reflected xss" `Quick test_reflected_xss;
    Alcotest.test_case "static page clean" `Quick test_static_page_clean;
    Alcotest.test_case "scriptlet flow" `Quick test_scriptlet_flow;
    Alcotest.test_case "sanitized expression" `Quick test_sanitized_expression;
    Alcotest.test_case "session in jsp" `Quick test_session_in_jsp ]
