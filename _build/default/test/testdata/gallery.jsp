<html>
<head><title>Gallery</title></head>
<body>
<%-- the album name is echoed without encoding: reflected XSS --%>
<h1>Album: <%= request.getParameter("album") %></h1>
<% String owner = request.getParameter("owner"); %>
<% session.setAttribute("owner", owner); %>
<p>Curated by <%= (String) session.getAttribute("owner") %></p>
<p>Contact: <%= URLEncoder.encode(request.getParameter("contact")) %></p>
</body>
</html>
