(* Metamorphic properties of the whole analysis:
   - inserting a sanitizer on a flow never increases the issue count;
   - duplicating a servlet under a fresh name exactly doubles its issues;
   - adding unreachable code changes nothing;
   - DOT export is well-formed for arbitrary generated apps. *)

open Core

let issues_of srcs =
  let loaded =
    Taj.load { Taj.name = "meta"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> Report.issue_count c.Taj.report
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

(* a template servlet with a numbered name and a raw/sanitized slot *)
let servlet ~name ~sanitized =
  Printf.sprintf
    {|class %s extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          String x = req.getParameter("q");
          resp.getWriter().println(%s);
        }
      }|}
    name
    (if sanitized then "URLEncoder.encode(x)" else "x")

let test_sanitizer_monotone () =
  let raw = issues_of [ servlet ~name:"M1" ~sanitized:false ] in
  let clean = issues_of [ servlet ~name:"M1" ~sanitized:true ] in
  Alcotest.(check bool) "sanitizer never increases issues" true (clean <= raw);
  Alcotest.(check int) "raw flow found" 1 raw;
  Alcotest.(check int) "sanitized flow silent" 0 clean

let test_duplication_doubles () =
  let one = issues_of [ servlet ~name:"D1" ~sanitized:false ] in
  let two =
    issues_of
      [ servlet ~name:"D1" ~sanitized:false;
        servlet ~name:"D2" ~sanitized:false ]
  in
  Alcotest.(check int) "duplication doubles issues" (2 * one) two

let test_unreachable_code_is_inert () =
  let base = issues_of [ servlet ~name:"U1" ~sanitized:false ] in
  let with_dead =
    issues_of
      [ servlet ~name:"U1" ~sanitized:false;
        {|class NeverCalled {
            void leak(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(req.getParameter("ghost"));
            }
          }|} ]
  in
  Alcotest.(check int) "dead code adds nothing" base with_dead

(* random sanitizer placement over a pool of servlets: count equals the
   number of unsanitized ones *)
let prop_counts_match_unsanitized =
  QCheck.Test.make ~name:"issue count equals unsanitized servlet count"
    ~count:20
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) bool)
    (fun flags ->
       let srcs =
         List.mapi
           (fun i sanitized ->
              servlet ~name:(Printf.sprintf "Q%d" i) ~sanitized)
           flags
       in
       let expected =
         List.length (List.filter (fun sanitized -> not sanitized) flags)
       in
       issues_of srcs = expected)

let test_dot_wellformed () =
  let g =
    Workloads.Apps.generate ~scale:0.02
      (Option.get (Workloads.Apps.find "Friki"))
  in
  let loaded = Taj.load (Workloads.Codegen.to_input g) in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
  | Taj.Completed c ->
    let cg_dot = Dot.callgraph c.Taj.andersen in
    let report_dot = Dot.report c.Taj.builder c.Taj.report in
    let balanced s =
      let opens = ref 0 and closes = ref 0 in
      String.iter
        (fun ch ->
           if ch = '{' then incr opens else if ch = '}' then incr closes)
        s;
      !opens = !closes
    in
    Alcotest.(check bool) "callgraph braces balanced" true (balanced cg_dot);
    Alcotest.(check bool) "report braces balanced" true (balanced report_dot);
    Alcotest.(check bool) "callgraph nonempty" true (String.length cg_dot > 100);
    (* no raw newlines inside quoted labels *)
    Alcotest.(check bool) "labels escaped" true
      (not
         (List.exists
            (fun line ->
               String.length line > 0
               && String.contains line '"'
               && (let quotes =
                     String.fold_left
                       (fun n ch -> if ch = '"' then n + 1 else n)
                       0 line
                   in
                   quotes mod 2 <> 0))
            (String.split_on_char '\n' cg_dot)))

(* total robustness: every random control-flow program analyzes under every
   configuration without raising *)
let prop_analysis_total =
  QCheck.Test.make ~name:"analysis is total on random programs" ~count:40
    Test_ssa.arb_program
    (fun src ->
       let wrapped =
         src
         ^ {| class Drv extends HttpServlet {
                public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                  G g = new G();
                  resp.getWriter().println("r:" + g.f(Integer.parseInt(req.getParameter("n"))));
                }
              }|}
       in
       let loaded =
         Taj.load { Taj.name = "rnd"; app_sources = [ wrapped ]; descriptor = "" }
       in
       List.for_all
         (fun alg ->
            match (Taj.run loaded (Config.preset alg)).Taj.result with
            | Taj.Completed _ | Taj.Did_not_complete _ -> true)
         Config.all_algorithms)

let suite =
  [ Alcotest.test_case "sanitizer monotone" `Quick test_sanitizer_monotone;
    QCheck_alcotest.to_alcotest prop_analysis_total;
    Alcotest.test_case "duplication doubles" `Quick test_duplication_doubles;
    Alcotest.test_case "unreachable code inert" `Quick
      test_unreachable_code_is_inert;
    Alcotest.test_case "dot well-formed" `Quick test_dot_wellformed;
    QCheck_alcotest.to_alcotest prop_counts_match_unsanitized ]
