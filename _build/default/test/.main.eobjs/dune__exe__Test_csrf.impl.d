test/test_csrf.ml: Alcotest Config Core Csrf List Taj
