test/test_pretty.ml: Alcotest Ast Jir List Models Option Parser Pretty Printexc Printf QCheck QCheck_alcotest Test_ssa Workloads
