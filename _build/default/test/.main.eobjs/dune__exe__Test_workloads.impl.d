test/test_workloads.ml: Alcotest Apps Codegen Core Ground_truth Jir List Option Patterns Printf QCheck QCheck_alcotest Rng Score Workloads
