test/main.mli:
