test/test_taint.ml: Alcotest Config Core List Report Rules Taj
