test/test_lexer.ml: Alcotest Ast Jir Lexer List
