test/test_algorithms.ml: Alcotest Config Core List Pointer Printf Report Rules String Taj
