test/test_rules.ml: Alcotest Core Jir Lazy List Lower Models Parser Program Rules Tac
