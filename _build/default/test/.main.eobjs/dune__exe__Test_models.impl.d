test/test_models.ml: Alcotest Classtable Core Fmt Hashtbl Jir Lazy List Lower Models Option Parser Program Ssa String Tac Verify Workloads
