test/test_securibench.ml: Alcotest List Printf Securibench Workloads
