test/test_ssa.ml: Alcotest Array Cfg Dominance Hashtbl Helpers Jir List Printf QCheck QCheck_alcotest Ssa Tac
