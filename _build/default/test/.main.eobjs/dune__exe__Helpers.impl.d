test/helpers.ml: Alcotest Array Jir List Lower Parser Program Ssa Tac
