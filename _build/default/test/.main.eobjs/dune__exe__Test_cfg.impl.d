test/test_cfg.ml: Alcotest Array Ast Cfg Dominance Fmt Helpers Jir List String Tac Verify
