test/test_backward.ml: Alcotest Config Core Jir List Sdg String Taj
