test/test_frameworks.ml: Alcotest Config Core Jir List Models Report Rules Taj
