test/test_jsp.ml: Alcotest Config Core List Models Report Rules Taj
