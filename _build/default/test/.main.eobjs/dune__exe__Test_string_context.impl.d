test/test_string_context.ml: Alcotest Config Core Flows List Report Rules String String_context Taj
