test/test_corpus.ml: Alcotest Config Core Flows Fmt Jir List Models Report Rules Sdg String Taj
