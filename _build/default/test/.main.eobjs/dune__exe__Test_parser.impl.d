test/test_parser.ml: Alcotest Jir List Parser
