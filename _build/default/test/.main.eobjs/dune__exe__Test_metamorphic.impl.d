test/test_metamorphic.ml: Alcotest Config Core Dot List Option Printf QCheck QCheck_alcotest Report String Taj Test_ssa Workloads
