test/test_reflection.ml: Alcotest Config Core List Models Report Rules Taj
