test/test_reproduction.ml: Alcotest Apps Codegen Config Core Flows Ground_truth Jir List Option Printf Report Score Sdg Taj Workloads
