test/test_pointer.ml: Alcotest Andersen Callgraph Core Heapgraph Int Jir Keys List Pointer Policy Pq QCheck QCheck_alcotest Set String
