test/test_sdg.ml: Alcotest Config Core Flows Jir List Printf Report Sdg String Taj
