test/test_lower.ml: Alcotest Array Ast Helpers Jir List Lower Program String Tac
