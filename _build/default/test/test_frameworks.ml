(* Framework modeling tests (§4.2.2): Struts actions with tainted
   ActionForms, EJB remote dispatch through the deployment descriptor, and
   servlet auto-detection. *)

open Core

let analyze ?(descriptor = "") srcs =
  Taj.run
    (Taj.load { Taj.name = "fw"; app_sources = srcs; descriptor })
    (Config.preset Config.Hybrid_unbounded)

let completed a =
  match a.Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete reason -> Alcotest.failf "did not complete: %s" reason

let issues ?descriptor srcs =
  (completed (analyze ?descriptor srcs)).Taj.report.Report.issues

let count issue reports =
  List.length (List.filter (fun ir -> ir.Report.ir_issue = issue) reports)

let test_descriptor_parsing () =
  let d =
    Models.Frameworks.parse_descriptor
      "# comment\n\
       servlet MyServlet\n\
       \n\
       action /login LoginAction LoginForm\n\
       ejb java:comp/env/ejb/EB2 EB2Home EB2Bean\n"
  in
  Alcotest.(check (list string)) "servlets" [ "MyServlet" ]
    d.Models.Frameworks.servlets;
  Alcotest.(check int) "actions" 1 (List.length d.Models.Frameworks.actions);
  Alcotest.(check (list (pair string string))) "registry"
    [ ("java:comp/env/ejb/EB2", "$EB2HomeImpl") ]
    (Models.Frameworks.ejb_registry d)

let test_descriptor_error () =
  match Models.Frameworks.parse_descriptor "bogus line here and more" with
  | exception Models.Frameworks.Descriptor_error _ -> ()
  | _ -> Alcotest.fail "expected descriptor error"

let struts_app =
  {|class LoginForm extends ActionForm {
      String username;
      String password;
    }
    class LoginAction extends Action {
      public ActionForward execute(ActionMapping mapping, ActionForm form,
                                   HttpServletRequest req, HttpServletResponse resp) {
        LoginForm f = (LoginForm) form;
        resp.getWriter().println(f.username);
        return null;
      }
    }|}

let test_struts_tainted_form () =
  let reports =
    issues ~descriptor:"action /login LoginAction LoginForm" [ struts_app ]
  in
  Alcotest.(check bool) "form field is tainted" true
    (count Rules.Xss reports >= 1)

let test_struts_without_descriptor_is_silent () =
  (* without the descriptor the action is never dispatched: no entrypoint,
     no report — exactly why framework modeling matters *)
  let reports = issues [ struts_app ] in
  Alcotest.(check int) "no entrypoint, no issue" 0 (count Rules.Xss reports)

let test_struts_nested_form () =
  let reports =
    issues
      ~descriptor:"action /acct AccountAction AccountForm"
      [ {|class Address {
            String street;
          }
          class AccountForm extends ActionForm {
            String owner;
            Address address;
          }
          class AccountAction extends Action {
            public ActionForward execute(ActionMapping mapping, ActionForm form,
                                         HttpServletRequest req, HttpServletResponse resp) {
              AccountForm f = (AccountForm) form;
              resp.getWriter().println(f.address.street);
              return null;
            }
          }|} ]
  in
  Alcotest.(check bool) "nested form field is tainted" true
    (count Rules.Xss reports >= 1)

let ejb_app =
  {|interface EB2 {
      String m2(String s);
    }
    interface EB2Home extends EJBHome {
      EB2 create();
    }
    class EB2Bean implements EB2 {
      public String m2(String s) { return s; }
    }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        InitialContext initial = new InitialContext();
        Object objRef = initial.lookup("java:comp/env/ejb/EB2");
        EB2Home eb2Home = (EB2Home) PortableRemoteObject.narrow(objRef, EB2Home.class);
        EB2 eb2Obj = eb2Home.create();
        resp.getWriter().println(eb2Obj.m2(req.getParameter("x")));
      }
    }|}

let test_ejb_dispatch () =
  let reports =
    issues ~descriptor:"ejb java:comp/env/ejb/EB2 EB2Home EB2Bean" [ ejb_app ]
  in
  Alcotest.(check bool) "flow through remote EJB call" true
    (count Rules.Xss reports >= 1)

let test_ejb_without_descriptor_misses () =
  (* without the registry the lookup cannot be resolved and the bean's m2 is
     unreachable — the flow is lost, which is the paper's motivation for
     modeling EJB dispatch *)
  let reports = issues [ ejb_app ] in
  Alcotest.(check int) "lookup unresolved" 0 (count Rules.Xss reports)

let test_cast_constraint_inference () =
  let units =
    [ Jir.Parser.parse
        {|class F1 extends ActionForm { String a; }
          class F2 extends ActionForm { String b; }
          class MyAction extends Action {
            public ActionForward execute(ActionMapping mapping, ActionForm form,
                                         HttpServletRequest req, HttpServletResponse resp) {
              F1 f = (F1) form;
              return null;
            }
          }|} ]
  in
  match Models.Frameworks.form_cast_constraints units with
  | [ ("MyAction", [ "F1" ]) ] -> ()
  | other ->
    Alcotest.failf "unexpected constraints (%d entries)" (List.length other)

let test_cast_narrows_synthesized_forms () =
  (* MyAction casts to F1 only: the synthesized harness must build F1 and
     not F2, even though both are subtypes of the declared form class *)
  let a =
    analyze ~descriptor:"action /x MyAction ActionForm"
      [ {|class F1 extends ActionForm { String a; }
          class F2 extends ActionForm { String b; }
          class MyAction extends Action {
            public ActionForward execute(ActionMapping mapping, ActionForm form,
                                         HttpServletRequest req, HttpServletResponse resp) {
              F1 f = (F1) form;
              resp.getWriter().println(f.a);
              return null;
            }
          }|} ]
  in
  let prog = a.Taj.loaded.Taj.program in
  Alcotest.(check bool) "maker for F1 exists" true
    (Jir.Program.find_method prog "$Synth.make$F1/0" <> None);
  Alcotest.(check bool) "no maker for F2" true
    (Jir.Program.find_method prog "$Synth.make$F2/0" = None);
  (match a.Taj.result with
   | Taj.Completed c ->
     Alcotest.(check bool) "flow still found" true
       (count Rules.Xss c.Taj.report.Report.issues >= 1)
   | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r)

let test_servlet_autodetection () =
  (* servlets are entrypoints even when the descriptor doesn't name them *)
  let reports =
    issues
      [ {|class Auto extends HttpServlet {
            public void doPost(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(req.getParameter("q"));
            }
          }|} ]
  in
  Alcotest.(check int) "doPost reached" 1 (count Rules.Xss reports)

let suite =
  [ Alcotest.test_case "descriptor parsing" `Quick test_descriptor_parsing;
    Alcotest.test_case "descriptor error" `Quick test_descriptor_error;
    Alcotest.test_case "struts tainted form" `Quick test_struts_tainted_form;
    Alcotest.test_case "struts needs descriptor" `Quick
      test_struts_without_descriptor_is_silent;
    Alcotest.test_case "struts nested form" `Quick test_struts_nested_form;
    Alcotest.test_case "ejb dispatch" `Quick test_ejb_dispatch;
    Alcotest.test_case "ejb needs descriptor" `Quick
      test_ejb_without_descriptor_misses;
    Alcotest.test_case "servlet autodetection" `Quick test_servlet_autodetection;
    Alcotest.test_case "cast constraint inference" `Quick
      test_cast_constraint_inference;
    Alcotest.test_case "cast narrows forms" `Quick
      test_cast_narrows_synthesized_forms ]
