(* CFG, dominance and IR-verifier unit tests on hand-built and lowered
   method bodies. *)

open Jir

let meth_of_blocks ?(nvars = 16) ?(arity = 1) blocks =
  { Tac.m_class = "T"; m_name = "f"; m_arity = arity; m_static = false;
    m_ret = Ast.Tvoid; m_param_types = []; m_blocks = Array.of_list blocks;
    m_nvars = nvars; m_synthetic = false; m_library = false;
    m_has_body = true }

let block ?(instrs = []) ?(handlers = []) term =
  { Tac.phis = []; instrs = Array.of_list instrs; term; handlers }

let test_cfg_diamond () =
  (* B0 -> B1/B2 -> B3 *)
  let m =
    meth_of_blocks ~nvars:4
      [ block ~instrs:[ Tac.Const (1, Tac.Cbool true) ] (Tac.If (1, 1, 2));
        block (Tac.Goto 3);
        block (Tac.Goto 3);
        block (Tac.Return None) ]
  in
  let cfg = Cfg.build m in
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (List.sort compare cfg.Cfg.succs.(0));
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (List.sort compare cfg.Cfg.preds.(3));
  Alcotest.(check int) "rpo starts at entry" 0 cfg.Cfg.rpo.(0);
  let dom = Dominance.compute cfg in
  Alcotest.(check int) "idom of 1" 0 dom.Dominance.idom.(1);
  Alcotest.(check int) "idom of 2" 0 dom.Dominance.idom.(2);
  Alcotest.(check int) "idom of 3 (join)" 0 dom.Dominance.idom.(3);
  Alcotest.(check (list int)) "frontier of 1" [ 3 ] dom.Dominance.frontier.(1);
  Alcotest.(check (list int)) "frontier of 2" [ 3 ] dom.Dominance.frontier.(2)

let test_cfg_loop () =
  (* B0 -> B1(header) -> B2(body) -> B1; B1 -> B3(exit) *)
  let m =
    meth_of_blocks ~nvars:4
      [ block (Tac.Goto 1);
        block ~instrs:[ Tac.Const (1, Tac.Cbool true) ] (Tac.If (1, 2, 3));
        block (Tac.Goto 1);
        block (Tac.Return None) ]
  in
  let cfg = Cfg.build m in
  let dom = Dominance.compute cfg in
  Alcotest.(check bool) "header dominates body" true (Dominance.dominates dom 1 2);
  Alcotest.(check bool) "body does not dominate header" false
    (Dominance.dominates dom 2 1);
  (* the back edge makes the header its own frontier member *)
  Alcotest.(check bool) "header in its own frontier" true
    (List.mem 1 dom.Dominance.frontier.(2))

let test_compact_removes_dead_blocks () =
  let m =
    meth_of_blocks ~nvars:4
      [ block (Tac.Return None);
        block (Tac.Goto 0);     (* unreachable *)
        block (Tac.Return None) (* unreachable *) ]
  in
  let cfg = Cfg.compact m in
  Alcotest.(check int) "one block left" 1 cfg.Cfg.nblocks;
  Alcotest.(check int) "body shrunk" 1 (Array.length m.Tac.m_blocks)

let test_exceptional_edges_in_cfg () =
  let m =
    meth_of_blocks ~nvars:4
      [ block ~handlers:[ 1 ] (Tac.Goto 2);
        block ~instrs:[ Tac.Catch_entry (1, "Exception") ] (Tac.Goto 2);
        block (Tac.Return None) ]
  in
  let cfg = Cfg.build m in
  Alcotest.(check (list int)) "handler edge present" [ 1; 2 ]
    (List.sort compare cfg.Cfg.succs.(0))

let test_verify_catches_bad_target () =
  let m = meth_of_blocks [ block (Tac.Goto 7) ] in
  match Verify.check_meth m with
  | [ v ] ->
    Alcotest.(check bool) "mentions target" true
      (String.length v.Verify.v_message > 0)
  | other -> Alcotest.failf "expected 1 violation, got %d" (List.length other)

let test_verify_catches_double_assignment () =
  let m =
    meth_of_blocks
      [ block
          ~instrs:[ Tac.Const (2, Tac.Cint 1); Tac.Const (2, Tac.Cint 2) ]
          (Tac.Return None) ]
  in
  Alcotest.(check bool) "double assignment caught" true
    (Verify.check_meth m <> []);
  Alcotest.(check (list string)) "allowed in non-SSA mode" []
    (List.map (fun v -> v.Verify.v_message) (Verify.check_meth ~ssa:false m))

let test_verify_catches_undefined_use () =
  let m =
    meth_of_blocks [ block ~instrs:[ Tac.Move (2, 9) ] (Tac.Return None) ]
  in
  Alcotest.(check bool) "undefined use caught" true (Verify.check_meth m <> [])

let test_verify_accepts_lowered_code () =
  let prog =
    Helpers.load_program
      [ "class C { int f(int n) { int s = 0; \
         for (int i = 0; i < n; i++) { s = s + i; } return s; } }" ]
  in
  Alcotest.(check (list string)) "clean" []
    (List.map (Fmt.str "%a" Verify.pp_violation) (Verify.check_program prog))

let suite =
  [ Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "cfg loop" `Quick test_cfg_loop;
    Alcotest.test_case "compact removes dead blocks" `Quick
      test_compact_removes_dead_blocks;
    Alcotest.test_case "exceptional edges" `Quick test_exceptional_edges_in_cfg;
    Alcotest.test_case "verify bad target" `Quick test_verify_catches_bad_target;
    Alcotest.test_case "verify double assignment" `Quick
      test_verify_catches_double_assignment;
    Alcotest.test_case "verify undefined use" `Quick
      test_verify_catches_undefined_use;
    Alcotest.test_case "verify accepts lowered code" `Quick
      test_verify_accepts_lowered_code ]
