(* Living verification of the reproduction claims recorded in
   EXPERIMENTS.md: the paper's qualitative results must hold on the
   generated benchmark suite at test scale. *)

open Core
open Workloads

let scale = 0.05

let runs_for name =
  Score.run_app ~scale (Option.get (Apps.find name))

let result runs alg =
  match List.find_opt (fun r -> r.Score.r_algorithm = alg) runs with
  | Some r -> r
  | None -> Alcotest.fail "missing configuration run"

let classification r =
  match r.Score.r_classification with
  | Some c -> c
  | None -> Alcotest.fail "configuration did not complete"

(* §7.2: hybrid and CI agree on true positives (both sound); CI reports at
   least as many issues *)
let test_hybrid_ci_soundness_agreement () =
  List.iter
    (fun (a : Apps.app) ->
       let runs = Score.run_app ~scale a in
       let h = classification (result runs Config.Hybrid_unbounded) in
       let ci = classification (result runs Config.Ci_thin_slicing) in
       Alcotest.(check int)
         (a.Apps.name ^ ": same true positives")
         h.Score.true_positives ci.Score.true_positives;
       Alcotest.(check bool)
         (a.Apps.name ^ ": CI has at least as many false positives")
         true
         (ci.Score.false_positives >= h.Score.false_positives))
    Apps.scored_apps

(* §7.2: CS false negatives from cross-thread flows on BlueBlog (2), I (1) *)
let test_cs_false_negatives () =
  let blueblog = classification (result (runs_for "BlueBlog") Config.Cs_thin_slicing) in
  Alcotest.(check int) "BlueBlog CS FNs" 2 blueblog.Score.false_negatives;
  let i = classification (result (runs_for "I") Config.Cs_thin_slicing) in
  Alcotest.(check int) "I CS FNs" 1 i.Score.false_negatives

(* Table 3: CS fails on the large benchmarks, completes on the small ones *)
let test_cs_completion_set () =
  let completes name =
    (result (runs_for name) Config.Cs_thin_slicing).Score.r_completed
  in
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " completes") true (completes name))
    [ "A"; "BlueBlog"; "Friki"; "I" ];
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " does not complete") false
         (completes name))
    [ "GridSphere"; "ST"; "Webgoat"; "B" ]

(* §7.2: the optimized variant introduces exactly one new FN on BlueBlog
   (the over-long real flow) *)
let test_optimized_single_fn_on_blueblog () =
  let runs = runs_for "BlueBlog" in
  let prio = classification (result runs Config.Hybrid_prioritized) in
  let opt = classification (result runs Config.Hybrid_optimized) in
  Alcotest.(check int) "prioritized keeps all TPs" 0
    prio.Score.false_negatives;
  Alcotest.(check int) "optimized loses exactly one" 1
    opt.Score.false_negatives

(* accuracy ordering: CS >= optimized >= unbounded >= CI over the scored
   aggregate (the paper's 0.54 / 0.35 / 0.22 ordering) *)
let test_accuracy_ordering () =
  let agg alg =
    let tp, fp =
      List.fold_left
        (fun (tp, fp) (a : Apps.app) ->
           match
             (result (Score.run_app ~scale a) alg).Score.r_classification
           with
           | Some c ->
             (tp + c.Score.true_positives, fp + c.Score.false_positives)
           | None -> (tp, fp))
        (0, 0) Apps.scored_apps
    in
    if tp + fp = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fp)
  in
  let cs = agg Config.Cs_thin_slicing in
  let hybrid = agg Config.Hybrid_unbounded in
  let optimized = agg Config.Hybrid_optimized in
  let ci = agg Config.Ci_thin_slicing in
  Alcotest.(check bool) "cs >= optimized" true (cs >= optimized);
  Alcotest.(check bool) "optimized >= hybrid" true (optimized >= hybrid);
  Alcotest.(check bool) "hybrid > ci" true (hybrid > ci)

(* §6.1: under the scaled budget, priority-driven construction finds more
   true positives than chaotic iteration on the largest app *)
let test_priority_beats_chaotic () =
  let a = Option.get (Apps.find "GridSphere") in
  let g = Apps.generate ~scale a in
  let loaded = Taj.load (Codegen.to_input g) in
  let truth = g.Codegen.g_truth in
  let tp config =
    match (Taj.run loaded config).Taj.result with
    | Taj.Completed c ->
      (Score.classify truth c.Taj.builder c.Taj.report).Score.true_positives
    | Taj.Did_not_complete _ -> -1
  in
  let base = Config.preset ~scale Config.Hybrid_prioritized in
  let budget = { base with Config.max_cg_nodes = Some 1000 } in
  let tp_prio = tp budget in
  let tp_fifo = tp { budget with Config.prioritized = false } in
  Alcotest.(check bool)
    (Printf.sprintf "priority (%d TPs) > chaotic (%d TPs)" tp_prio tp_fifo)
    true (tp_prio > tp_fifo)

(* §6.2.2: long flows are disproportionately false positives *)
let test_flow_length_correlation () =
  let short_t = ref 0 and short_f = ref 0 in
  let long_t = ref 0 and long_f = ref 0 in
  List.iter
    (fun (a : Apps.app) ->
       let g = Apps.generate ~scale a in
       let loaded = Taj.load (Codegen.to_input g) in
       match (Taj.run loaded (Config.preset ~scale Config.Hybrid_unbounded)).Taj.result with
       | Taj.Completed c ->
         List.iter
           (fun fl ->
              let m =
                Sdg.Builder.node_meth c.Taj.builder
                  fl.Flows.fl_sink.Sdg.Stmt.node
              in
              match
                Ground_truth.attribute g.Codegen.g_truth
                  ~cls:m.Jir.Tac.m_class ~meth:m.Jir.Tac.m_name
              with
              | Some p ->
                let real = p.Ground_truth.p_real in
                if fl.Flows.fl_length <= 8 then
                  (if real then incr short_t else incr short_f)
                else if real then incr long_t
                else incr long_f
              | None -> ())
           c.Taj.report.Report.raw_flows
       | Taj.Did_not_complete _ -> ())
    Apps.scored_apps;
  let rate t f = float_of_int !t /. float_of_int (max 1 (!t + !f)) in
  Alcotest.(check bool)
    (Printf.sprintf "short TP rate (%.2f) > long TP rate (%.2f)"
       (rate short_t short_f) (rate long_t long_f))
    true
    (rate short_t short_f > rate long_t long_f)

let suite =
  [ Alcotest.test_case "hybrid/CI soundness agreement" `Slow
      test_hybrid_ci_soundness_agreement;
    Alcotest.test_case "CS false negatives" `Slow test_cs_false_negatives;
    Alcotest.test_case "CS completion set" `Slow test_cs_completion_set;
    Alcotest.test_case "optimized FN on BlueBlog" `Slow
      test_optimized_single_fn_on_blueblog;
    Alcotest.test_case "accuracy ordering" `Slow test_accuracy_ordering;
    Alcotest.test_case "priority beats chaotic" `Slow
      test_priority_beats_chaotic;
    Alcotest.test_case "flow length correlation" `Slow
      test_flow_length_correlation ]
