(* Shared fixtures for the analysis test-suites: tiny programs are loaded
   with a minimal stub JDK so tests don't depend on the full model library
   unless they ask for it. *)

open Jir

(* A minimal JDK surface sufficient for frontend tests. The real model JDK
   (Models.Jdklib) supersedes this for analysis tests. *)
let mini_jdk =
  {|
class Object {
  public Object() {}
  public String toString() { return ""; }
  public boolean equals(Object o) { return true; }
  public int hashCode() { return 0; }
}
class String {
  public native String concat(String s);
  public native String substring(int b, int e);
  public native String trim();
  public native String toUpperCase();
  public native String toLowerCase();
  public native boolean equals(Object o);
  public native int length();
  public native String toString();
}
class Exception {
  public Exception() {}
  public native String getMessage();
  public String toString() { return this.getMessage(); }
}
class Error { public Error() {} }
|}

(** Load [srcs] as application code on top of the mini JDK, run SSA. *)
let load_program ?(jdk = mini_jdk) (srcs : string list) : Program.t =
  let prog = Program.create () in
  let units =
    (true, Parser.parse jdk)
    :: List.map (fun s -> (false, Parser.parse s)) srcs
  in
  Lower.load prog units;
  Ssa.convert_program prog;
  prog

(** Load without SSA conversion (for TAC-level assertions). *)
let load_tac ?(jdk = mini_jdk) (srcs : string list) : Program.t =
  let prog = Program.create () in
  let units =
    (true, Parser.parse jdk)
    :: List.map (fun s -> (false, Parser.parse s)) srcs
  in
  Lower.load prog units;
  prog

let find_method prog id =
  match Program.find_method prog id with
  | Some m -> m
  | None -> Alcotest.failf "method %s not found" id

let all_instrs (m : Tac.meth) =
  Array.to_list m.Tac.m_blocks
  |> List.concat_map (fun (b : Tac.block) -> Array.to_list b.Tac.instrs)

let count_instrs p (m : Tac.meth) =
  List.length (List.filter p (all_instrs m))
