(* Lowering tests: AST -> TAC shapes, string-carrier intrinsics, implicit
   constructors, field initializers, try/catch handler edges. *)

open Jir

let test_simple_method () =
  let prog =
    Helpers.load_tac
      [ "class C { int add(int a, int b) { return a + b; } }" ]
  in
  let m = Helpers.find_method prog "C.add/3" in
  Alcotest.(check int) "arity" 3 m.Tac.m_arity;
  Alcotest.(check bool) "has binop" true
    (Helpers.count_instrs
       (function Tac.Binop (_, Ast.Add, _, _) -> true | _ -> false)
       m > 0)

let test_string_concat_is_strcat () =
  let prog =
    Helpers.load_tac
      [ {|class C { String f(String a) { return a + "suffix"; } }|} ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  Alcotest.(check int) "strcat count" 1
    (Helpers.count_instrs
       (function Tac.Strcat _ -> true | _ -> false)
       m)

let test_string_intrinsics () =
  (* calls on String receivers must not produce Call instructions *)
  let prog =
    Helpers.load_tac
      [ {|class C {
            String f(String a, String b) {
              String x = a.concat(b);
              String y = x.trim();
              String z = y.toUpperCase();
              return z.substring(0, 1);
            }
          }|} ]
  in
  let m = Helpers.find_method prog "C.f/3" in
  Alcotest.(check int) "no calls" 0
    (Helpers.count_instrs (function Tac.Call _ -> true | _ -> false) m);
  Alcotest.(check bool) "has strcat for concat" true
    (Helpers.count_instrs (function Tac.Strcat _ -> true | _ -> false) m >= 1)

let test_new_emits_ctor_call () =
  let prog = Helpers.load_tac [ "class C { Object f() { return new C(); } }" ] in
  let m = Helpers.find_method prog "C.f/1" in
  Alcotest.(check int) "new" 1
    (Helpers.count_instrs (function Tac.New _ -> true | _ -> false) m);
  Alcotest.(check int) "ctor call" 1
    (Helpers.count_instrs
       (function
         | Tac.Call { kind = Tac.Special; target; _ } ->
           String.equal target.Tac.rname "<init>"
         | _ -> false)
       m)

let test_default_ctor_synthesized () =
  let prog = Helpers.load_tac [ "class C { }" ] in
  ignore (Helpers.find_method prog "C.<init>/1")

let test_field_initializers_in_ctor () =
  let prog =
    Helpers.load_tac
      [ {|class C { String tag = "t"; C() { } }|} ]
  in
  let m = Helpers.find_method prog "C.<init>/1" in
  Alcotest.(check int) "store for init" 1
    (Helpers.count_instrs
       (function
         | Tac.Store (0, { Tac.fname = "tag"; _ }, _) -> true
         | _ -> false)
       m)

let test_implicit_super_call () =
  let prog =
    Helpers.load_tac [ "class A { } class B extends A { B() { } }" ]
  in
  let m = Helpers.find_method prog "B.<init>/1" in
  Alcotest.(check int) "super init call" 1
    (Helpers.count_instrs
       (function
         | Tac.Call { kind = Tac.Special; target = { Tac.rclass = "A"; rname = "<init>"; _ }; _ } ->
           true
         | _ -> false)
       m)

let test_explicit_super_suppresses_implicit () =
  let prog =
    Helpers.load_tac
      [ "class A { A() {} A(int x) {} } \
         class B extends A { B() { super(1); } }" ]
  in
  let m = Helpers.find_method prog "B.<init>/1" in
  Alcotest.(check int) "exactly one super call" 1
    (Helpers.count_instrs
       (function
         | Tac.Call { target = { Tac.rclass = "A"; rname = "<init>"; _ }; _ } -> true
         | _ -> false)
       m)

let test_static_members () =
  let prog =
    Helpers.load_tac
      [ "class C { static int n = 7; static int get() { return n; } \
         void set(int v) { C.n = v; } }" ]
  in
  let clinit = Helpers.find_method prog "C.<clinit>/0" in
  Alcotest.(check int) "clinit sstore" 1
    (Helpers.count_instrs (function Tac.Sstore _ -> true | _ -> false) clinit);
  let get = Helpers.find_method prog "C.get/0" in
  Alcotest.(check int) "sload" 1
    (Helpers.count_instrs (function Tac.Sload _ -> true | _ -> false) get);
  let set = Helpers.find_method prog "C.set/2" in
  Alcotest.(check int) "sstore" 1
    (Helpers.count_instrs (function Tac.Sstore _ -> true | _ -> false) set)

let test_field_resolution_to_declaring_class () =
  let prog =
    Helpers.load_tac
      [ "class A { String s; } \
         class B extends A { String f() { return this.s; } }" ]
  in
  let m = Helpers.find_method prog "B.f/1" in
  Alcotest.(check int) "load resolves to A.s" 1
    (Helpers.count_instrs
       (function
         | Tac.Load (_, _, { Tac.fclass = "A"; fname = "s" }) -> true
         | _ -> false)
       m)

let test_try_catch_handlers () =
  let prog =
    Helpers.load_tac
      [ "class C { void g() {} void f() { try { g(); } catch (Exception e) { \
         String m = e.getMessage(); } } }" ]
  in
  let m = Helpers.find_method prog "C.f/1" in
  let has_handler_edges =
    Array.exists (fun (b : Tac.block) -> b.Tac.handlers <> []) m.Tac.m_blocks
  in
  Alcotest.(check bool) "handler edges" true has_handler_edges;
  Alcotest.(check int) "catch entry" 1
    (Helpers.count_instrs
       (function Tac.Catch_entry (_, "Exception") -> true | _ -> false)
       m)

let test_virtual_vs_static_dispatch_kinds () =
  let prog =
    Helpers.load_tac
      [ "class C { void inst() {} static void stat() {} \
         void f() { inst(); stat(); this.inst(); C.stat(); } }" ]
  in
  let m = Helpers.find_method prog "C.f/1" in
  let kinds =
    List.filter_map
      (function
        | Tac.Call { kind = Tac.Virtual; _ } -> Some "v"
        | Tac.Call { kind = Tac.Static; _ } -> Some "s"
        | _ -> None)
      (Helpers.all_instrs m)
  in
  Alcotest.(check (list string)) "kinds" [ "v"; "s"; "v"; "s" ] kinds

let test_array_ops () =
  let prog =
    Helpers.load_tac
      [ "class C { int f() { int[] a = new int[3]; a[0] = 1; int n = a.length; \
         return a[0] + n; } }" ]
  in
  let m = Helpers.find_method prog "C.f/1" in
  let count p = Helpers.count_instrs p m in
  Alcotest.(check int) "newarray" 1
    (count (function Tac.New_array _ -> true | _ -> false));
  Alcotest.(check int) "astore" 1
    (count (function Tac.Astore _ -> true | _ -> false));
  Alcotest.(check int) "aload" 1
    (count (function Tac.Aload _ -> true | _ -> false));
  Alcotest.(check int) "arraylen" 1
    (count (function Tac.Array_len _ -> true | _ -> false))

let test_unknown_variable_error () =
  match Helpers.load_tac [ "class C { void f() { x = 1; } }" ] with
  | exception Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "expected lowering error"

let test_site_uniqueness () =
  let prog =
    Helpers.load_tac
      [ "class C { void f() { Object a = new Object(); Object b = new Object(); } }" ]
  in
  let m = Helpers.find_method prog "C.f/1" in
  let sites =
    List.filter_map
      (function Tac.New (_, _, s) -> Some s | _ -> None)
      (Helpers.all_instrs m)
  in
  Alcotest.(check int) "two allocation sites" 2
    (List.length (List.sort_uniq compare sites));
  List.iter
    (fun s ->
       match Program.site_info prog s with
       | Some { Program.si_kind = Program.Alloc_site "Object"; _ } -> ()
       | _ -> Alcotest.fail "bad site registry entry")
    sites

let test_switch_lowering () =
  let prog =
    Helpers.load_tac
      [ "class C { int f(int x) { \
           switch (x) { \
             case 1: return 10; \
             case 2: \
             case 3: return 20; \
             default: return 0; \
           } } }" ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  (* one Eq comparison per label, one Or for the shared case *)
  Alcotest.(check int) "eq comparisons" 3
    (Helpers.count_instrs
       (function Tac.Binop (_, Ast.Eq, _, _) -> true | _ -> false)
       m);
  Alcotest.(check int) "or for shared labels" 1
    (Helpers.count_instrs
       (function Tac.Binop (_, Ast.Or, _, _) -> true | _ -> false)
       m)

let test_switch_on_string_flows () =
  let prog =
    Helpers.load_tac
      [ {|class C {
            String f(String mode, String payload) {
              String out = "none";
              switch (mode) {
                case "echo": out = payload; break;
                default: out = "other";
              }
              return out;
            }
          }|} ]
  in
  ignore (Helpers.find_method prog "C.f/3")

let test_do_while_lowering () =
  let prog =
    Helpers.load_tac
      [ "class C { int f(int n) { int s = 0; \
         do { s = s + n; n = n - 1; } while (n > 0); return s; } }" ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  (* the body block precedes the condition: entry jumps straight to it *)
  Alcotest.(check bool) "has a backward branch" true
    (Array.exists
       (fun (b : Tac.block) ->
          match b.Tac.term with Tac.If (_, t, _) -> t < 2 | _ -> false)
       m.Tac.m_blocks)

let test_switch_break_scoping () =
  (* a continue inside a switch inside a loop targets the loop *)
  let prog =
    Helpers.load_tac
      [ "class C { int f(int n) { int s = 0; \
         for (int i = 0; i < n; i++) { \
           switch (i) { case 0: continue; default: s = s + i; } \
         } return s; } }" ]
  in
  ignore (Helpers.find_method prog "C.f/2")

let suite =
  [ Alcotest.test_case "simple method" `Quick test_simple_method;
    Alcotest.test_case "switch lowering" `Quick test_switch_lowering;
    Alcotest.test_case "switch on string" `Quick test_switch_on_string_flows;
    Alcotest.test_case "do-while lowering" `Quick test_do_while_lowering;
    Alcotest.test_case "switch break scoping" `Quick test_switch_break_scoping;
    Alcotest.test_case "string + is strcat" `Quick test_string_concat_is_strcat;
    Alcotest.test_case "string intrinsics" `Quick test_string_intrinsics;
    Alcotest.test_case "new emits ctor call" `Quick test_new_emits_ctor_call;
    Alcotest.test_case "default ctor" `Quick test_default_ctor_synthesized;
    Alcotest.test_case "field initializers" `Quick test_field_initializers_in_ctor;
    Alcotest.test_case "implicit super" `Quick test_implicit_super_call;
    Alcotest.test_case "explicit super" `Quick test_explicit_super_suppresses_implicit;
    Alcotest.test_case "static members" `Quick test_static_members;
    Alcotest.test_case "field resolution" `Quick test_field_resolution_to_declaring_class;
    Alcotest.test_case "try/catch handlers" `Quick test_try_catch_handlers;
    Alcotest.test_case "dispatch kinds" `Quick test_virtual_vs_static_dispatch_kinds;
    Alcotest.test_case "array ops" `Quick test_array_ops;
    Alcotest.test_case "unknown variable" `Quick test_unknown_variable_error;
    Alcotest.test_case "site uniqueness" `Quick test_site_uniqueness ]
