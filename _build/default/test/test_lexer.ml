(* Lexer unit tests. *)

open Jir

let toks src =
  List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let tok = Alcotest.testable Lexer.pp_token ( = )

let check_toks msg src expected =
  Alcotest.(check (list tok)) msg expected (toks src)

let test_idents_keywords () =
  check_toks "mix" "class Foo extends bar"
    [ KW "class"; IDENT "Foo"; KW "extends"; IDENT "bar"; EOF ]

let test_numbers () =
  check_toks "ints" "0 42 1234"
    [ INT 0; INT 42; INT 1234; EOF ]

let test_strings () =
  check_toks "plain" {|"hello"|} [ STRING "hello"; EOF ];
  check_toks "escapes" {|"a\nb\t\"q\""|} [ STRING "a\nb\t\"q\""; EOF ];
  check_toks "empty" {|""|} [ STRING ""; EOF ]

let test_chars () =
  check_toks "char" "'x'" [ CHAR 'x'; EOF ];
  check_toks "escaped" {|'\n'|} [ CHAR '\n'; EOF ]

let test_puncts () =
  check_toks "ops" "== != <= >= && || + - * / % = < > ! . , ; ( ) { } [ ]"
    [ PUNCT "=="; PUNCT "!="; PUNCT "<="; PUNCT ">="; PUNCT "&&"; PUNCT "||";
      PUNCT "+"; PUNCT "-"; PUNCT "*"; PUNCT "/"; PUNCT "%"; PUNCT "=";
      PUNCT "<"; PUNCT ">"; PUNCT "!"; PUNCT "."; PUNCT ","; PUNCT ";";
      PUNCT "("; PUNCT ")"; PUNCT "{"; PUNCT "}"; PUNCT "["; PUNCT "]"; EOF ]

let test_comments () =
  check_toks "line" "a // comment\nb" [ IDENT "a"; IDENT "b"; EOF ];
  check_toks "block" "a /* x\ny */ b" [ IDENT "a"; IDENT "b"; EOF ];
  check_toks "block with stars" "a /* ** */ b" [ IDENT "a"; IDENT "b"; EOF ]

let test_positions () =
  let located = Lexer.tokenize "a\n  b" in
  match located with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.pos.Ast.line;
    Alcotest.(check int) "b line" 2 b.Lexer.pos.Ast.line;
    Alcotest.(check int) "b col" 3 b.Lexer.pos.Ast.col
  | _ -> Alcotest.fail "expected three tokens"

let test_errors () =
  let lex_fails src =
    match Lexer.tokenize src with
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "expected lex error on %S" src
  in
  lex_fails "\"unterminated";
  lex_fails "/* unterminated";
  lex_fails "#"

let suite =
  [ Alcotest.test_case "idents and keywords" `Quick test_idents_keywords;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "chars" `Quick test_chars;
    Alcotest.test_case "punctuation" `Quick test_puncts;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors ]
