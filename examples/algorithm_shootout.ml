(* Algorithm shootout: one program, five analyses.

   The program packs the three discriminating situations from the paper
   into one servlet family:
   - a context-confusion trap through a shared helper (CI reports a false
     positive, the context-sensitive configurations do not);
   - a heap-merge trap through a shared factory (hybrid and CI report a
     false positive; the CS emulation's context-qualified heap does not);
   - a cross-thread flow through a static field (hybrid and CI report the
     true positive; CS misses it — its flow-sensitive heap treatment is
     unsound for multi-threaded code, exactly as §3.2 concedes).

   Run with: dune exec examples/algorithm_shootout.exe *)

open Core

let program =
  [ {|class Relay {
        String relay(String s) { return s; }
      }
      class HelperPage extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          Relay r = new Relay();
          String dirty = r.relay(req.getParameter("input"));
          String clean = r.relay("static text");
          PrintWriter w = resp.getWriter();
          w.println(dirty);
          w.println(clean);
        }
      }|};
    {|class Pouch { String v; }
      class PouchFactory {
        static Pouch fill(String s) {
          Pouch p = new Pouch();
          p.v = s;
          return p;
        }
      }
      class FactoryPage extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          Pouch dirty = PouchFactory.fill(req.getParameter("input"));
          Pouch clean = PouchFactory.fill("static text");
          PrintWriter w = resp.getWriter();
          w.println(dirty.v);
          w.println(clean.v);
        }
      }|};
    {|class Mailbox { static String message; }
      class Courier extends Thread {
        HttpServletRequest req;
        public Courier(HttpServletRequest r) { this.req = r; }
        public void run() { Mailbox.message = this.req.getParameter("payload"); }
      }
      class ThreadPage extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          Courier c = new Courier(req);
          c.start();
          resp.getWriter().println(Mailbox.message);
        }
      }|} ]

(* the semantically real flows: HelperPage println(dirty),
   FactoryPage println(dirty.v), ThreadPage println(Mailbox.message) *)
let real_flows = 3

let () =
  print_endline "=== TAJ algorithm shootout ===\n";
  let input =
    { Taj.name = "shootout"; app_sources = program; descriptor = "" }
  in
  let loaded = Taj.load input in
  Printf.printf "%-22s %7s   %s\n" "configuration" "issues"
    (Printf.sprintf "(semantically real flows: %d)" real_flows);
  List.iter
    (fun alg ->
       let analysis = Taj.run loaded (Config.preset alg) in
       match analysis.Taj.result with
       | Taj.Did_not_complete reason ->
         Printf.printf "%-22s %7s   (%s)\n" (Config.algorithm_name alg) "-"
           reason
       | Taj.Completed c ->
         let n = Report.issue_count c.Taj.report in
         let comment =
           match alg with
           | Config.Ci_thin_slicing ->
             "all 3 real + helper FP + factory FP"
           | Config.Cs_thin_slicing ->
             "precise heap, but misses the cross-thread flow"
           | Config.Hybrid_unbounded | Config.Hybrid_prioritized
           | Config.Hybrid_optimized ->
             "all 3 real + factory FP (context-free heap)"
           | Config.Type_triage -> "type-only triage (no flow paths)"
         in
         Printf.printf "%-22s %7d   %s\n" (Config.algorithm_name alg) n comment)
    Config.all_algorithms;
  Printf.printf
    "\nThis is the tradeoff Table 3 and Figure 4 quantify: CI is cheap and\n\
     noisy, CS is precise but unsound for threads and does not scale, and\n\
     the hybrid algorithm sits between them — sound like CI, with most of\n\
     the local-flow precision of CS.\n"
