(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) over the synthetic benchmark suite, plus the ablation
   studies for the bounded-analysis techniques of §6.

   Subcommands:
     table1         settings matrix of the five configurations
     table2         application statistics (paper vs generated)
     table3         issues & running time per configuration per app
     figure4        true/false-positive classification on the scored apps
     summary        the §7.2 aggregate claims (accuracy, ratios, FNs)
     ablate-flowlen flow length vs truth (§6.2.2)
     ablate-depth   nested-taint depth sweep (§6.2.3)
     ablate-budget  priority-driven vs chaotic under a CG budget (§6.1)
     ablate-bound-kind  heap-transition vs no-heap-SDG step bound (§6.2.1)
     scaling        analysis cost vs application size
     securibench    the micro-benchmark suite per configuration
     inventory      per-app analysis statistics
     csv            export table3.csv / figure4.csv
     service        load-generate against an in-process analysis service
                    (--clients N, --requests M per client): latency
                    percentiles and terminal-outcome counts
     incremental    cold vs warm vs one-edit latency through the
                    incremental cache per app (writes incremental.csv)
     triage         type-triage rung zero vs full analysis latency per
                    app (writes triage.csv)
     contexts       sanitization-context judge off vs on per app, with
                    verdict counts and planted-mismatch recall (writes
                    contexts.csv)
     micro          Bechamel micro-benchmarks of the pipeline phases
     all            everything above except service and incremental
                    (default)

   Options: --scale <float> (default 0.05) scales workload sizes and the
   published bounds together; --jobs <int> (default: TAJ_JOBS or 1) sizes
   the Domain worker pool — per-app table rows and the per-rule/per-unit
   stages inside each analysis run in parallel, with output identical to
   --jobs 1; --refine switches on the access-path flow-refinement pass, so
   table3/csv rows carry confirmed/plausible verdict counts; --trace <file>
   writes a Chrome trace-event JSON of the whole bench run; --metrics
   prints the telemetry metrics table on stderr. *)

open Core
open Workloads

let scale = ref 0.05
let jobs = ref (match Parallel.env_jobs () with Some n -> n | None -> 1)
let refine = ref false
let trace = ref None
let metrics = ref false

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let algorithms = Config.all_algorithms

let alg_label = function
  | Config.Hybrid_unbounded -> "Hybrid/Unbounded"
  | Config.Hybrid_prioritized -> "Hybrid/Prioritized"
  | Config.Hybrid_optimized -> "Hybrid/Optimized"
  | Config.Cs_thin_slicing -> "CS"
  | Config.Ci_thin_slicing -> "CI"
  | Config.Type_triage -> "Triage"

(* Phase attribution for failure rows: wrap each pipeline step so a failed
   app's row can say *which* phase raised, not just that something did. *)
exception Phase_failure of string * exn

let run_phase phase f =
  try f () with
  | Phase_failure _ as pf -> raise pf
  | e -> raise (Phase_failure (phase, e))

let failure_row name ~phase err =
  Printf.sprintf "%-13s (failed during %s: %s)" name phase err

(* per-app fault isolation: one app whose generation or analysis raises
   becomes a failure row (naming the failed phase) instead of killing the
   whole table. Rows are computed on worker domains, which must not
   interleave prints, so the row is returned as a string and the main
   domain prints everything in app order. *)
let protected_row name f =
  try f () with
  | Phase_failure (phase, e) ->
    failure_row name ~phase (Printexc.to_string e)
  | e -> failure_row name ~phase:"analysis" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: Settings Used for the Evaluated Algorithms";
  Printf.printf "%-20s %8s %9s %10s %9s %7s %7s\n" "configuration" "models"
    "priority" "cg-bound" "heap-cap" "len<=" "depth";
  List.iter
    (fun alg ->
       let c = Config.preset ~scale:!scale alg in
       let opt = function Some v -> string_of_int v | None -> "-" in
       Printf.printf "%-20s %8s %9s %10s %9s %7s %7s\n" (alg_label alg) "yes"
         (if c.Config.prioritized then "yes" else "-")
         (opt c.Config.max_cg_nodes)
         (opt c.Config.max_heap_transitions)
         (opt c.Config.max_flow_length)
         (if c.Config.nested_taint_depth < 0 then "inf"
          else string_of_int c.Config.nested_taint_depth))
    algorithms;
  Printf.printf
    "(bounds scaled by %.2f from the paper's 20000/20000/14/2; all\n\
    \ configurations use the synthetic library models of Section 4)\n"
    !scale

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: Statistics on the Applications (paper -> generated)";
  Printf.printf "%-14s %-12s | %21s | %31s\n" "" ""
    "paper (app scope)" "generated stand-in";
  Printf.printf "%-14s %-12s | %6s %6s %7s | %7s %7s %7s %7s\n" "application"
    "version" "files" "class" "methods" "classes" "methods" "instrs" "lines";
  let row (a : Apps.app) =
    protected_row a.Apps.name @@ fun () ->
    let g = run_phase "generate" (fun () -> Apps.generate ~scale:!scale a) in
    let loaded =
      run_phase "frontend" (fun () -> Taj.load (Codegen.to_input g))
    in
    let st = Jir.Program.stats loaded.Taj.program in
    Printf.sprintf "%-14s %-12s | %6d %6d %7d | %7d %7d %7d %7d"
      a.Apps.name a.Apps.version a.Apps.files a.Apps.classes_app
      a.Apps.methods_app st.Jir.Program.st_app_classes
      st.Jir.Program.st_app_methods st.Jir.Program.st_instrs
      (Codegen.line_count g)
  in
  List.iter print_endline (Parallel.map ~jobs:!jobs row Apps.table2)

(* ------------------------------------------------------------------ *)
(* Table 3                                                            *)
(* ------------------------------------------------------------------ *)

let paper_cell (p : Apps.paper_result) =
  match p.Apps.pr_issues, p.Apps.pr_seconds with
  | Some i, Some s -> Printf.sprintf "%d/%ds" i s
  | _ -> "-"

let run_cell (r : Score.run) =
  if not r.Score.r_completed then "-"
  else
    match r.Score.r_refined with
    | Some rf ->
      (* refinement ran: show how many of the issues were Confirmed *)
      Printf.sprintf "%d(%dc)/%.2fs" r.Score.r_issues
        rf.Score.confirmed_issues r.Score.r_seconds
    | None -> Printf.sprintf "%d/%.2fs" r.Score.r_issues r.Score.r_seconds

let table3 () =
  header "Table 3: Issues and Time per Configuration (ours [paper])";
  Printf.printf "%-13s %s\n\n" ""
    "cells: issues/time [paper-issues/paper-time]; '-' = did not complete";
  Printf.printf "%-13s %-20s %-20s %-20s %-17s %-17s\n" "application"
    "Hybrid/Unb" "Hybrid/Prio" "Hybrid/Opt" "CS" "CI";
  let totals = Hashtbl.create 8 in
  let add alg v =
    let prev = Option.value ~default:(0.0, 0) (Hashtbl.find_opt totals alg) in
    Hashtbl.replace totals alg (fst prev +. v, snd prev + 1)
  in
  (* the expensive part (five analyses per app) runs one app per worker;
     printing and the totals fold stay on the main domain, in app order *)
  let results =
    Parallel.map ~jobs:!jobs
      (fun a -> (a, Score.run_app_result ~scale:!scale ~refine:!refine a))
      Apps.table2
  in
  List.iter
    (fun ((a : Apps.app), res) ->
       match res with
       | Error (phase, err) ->
         print_endline (failure_row a.Apps.name ~phase err)
       | Ok runs ->
         let cell alg paper =
           match List.find_opt (fun r -> r.Score.r_algorithm = alg) runs with
           | Some r ->
             if r.Score.r_completed then add alg r.Score.r_seconds;
             Printf.sprintf "%s [%s]" (run_cell r) (paper_cell paper)
           | None -> "?"
         in
         Printf.printf "%-13s %-20s %-20s %-20s %-17s %-17s\n" a.Apps.name
           (cell Config.Hybrid_unbounded a.Apps.paper.Apps.unbounded)
           (cell Config.Hybrid_prioritized a.Apps.paper.Apps.prioritized)
           (cell Config.Hybrid_optimized a.Apps.paper.Apps.optimized)
           (cell Config.Cs_thin_slicing a.Apps.paper.Apps.cs)
           (cell Config.Ci_thin_slicing a.Apps.paper.Apps.ci))
    results;
  Printf.printf "\naverage completed-run time:\n";
  List.iter
    (fun alg ->
       match Hashtbl.find_opt totals alg with
       | Some (total, n) when n > 0 ->
         Printf.printf "  %-20s %.3fs over %d apps\n" (alg_label alg)
           (total /. float_of_int n) n
       | _ -> Printf.printf "  %-20s (no completed runs)\n" (alg_label alg))
    algorithms

(* ------------------------------------------------------------------ *)
(* Figure 4                                                           *)
(* ------------------------------------------------------------------ *)

let bar ch n = String.make (min 60 n) ch

let figure4 () =
  header "Figure 4: True/False Positives on the Scored Benchmarks";
  let results =
    Parallel.map ~jobs:!jobs
      (fun a -> (a, Score.run_app_result ~scale:!scale a))
      Apps.scored_apps
  in
  List.iter
    (fun ((a : Apps.app), res) ->
       Printf.printf "\n--- %s ---\n" a.Apps.name;
       match res with
       | Error (phase, err) ->
         print_endline (failure_row a.Apps.name ~phase err)
       | Ok runs ->
         List.iter
           (fun (r : Score.run) ->
              match r.Score.r_classification with
              | None ->
                Printf.printf "  %-20s (did not complete)\n"
                  (alg_label r.Score.r_algorithm)
              | Some c ->
                Printf.printf "  %-20s TP %3d %s\n"
                  (alg_label r.Score.r_algorithm)
                  c.Score.true_positives (bar '#' c.Score.true_positives);
                Printf.printf "  %-20s FP %3d %s\n" ""
                  c.Score.false_positives (bar '.' c.Score.false_positives))
           runs)
    results

(* ------------------------------------------------------------------ *)
(* Summary of the 7.2 claims                                          *)
(* ------------------------------------------------------------------ *)

let summary () =
  header "Section 7.2 aggregate claims (measured on the scored apps)";
  let all_runs =
    Parallel.map ~jobs:!jobs
      (fun a -> (a, Score.run_app ~scale:!scale a))
      Apps.scored_apps
  in
  let agg alg =
    List.fold_left
      (fun (tp, fp, fn, time, n, dnc) (_, runs) ->
         match List.find_opt (fun r -> r.Score.r_algorithm = alg) runs with
         | Some r ->
           (match r.Score.r_classification with
            | Some c ->
              ( tp + c.Score.true_positives,
                fp + c.Score.false_positives,
                fn + c.Score.false_negatives,
                time +. r.Score.r_seconds, n + 1, dnc )
            | None -> (tp, fp, fn, time, n, dnc + 1))
         | None -> (tp, fp, fn, time, n, dnc))
      (0, 0, 0, 0.0, 0, 0) all_runs
  in
  Printf.printf "%-20s %5s %5s %5s %9s %10s %5s\n" "configuration" "TP" "FP"
    "FN" "accuracy" "avg-time" "DNC";
  List.iter
    (fun alg ->
       let tp, fp, fn, time, n, dnc = agg alg in
       let acc =
         if tp + fp = 0 then 0.0
         else float_of_int tp /. float_of_int (tp + fp)
       in
       Printf.printf "%-20s %5d %5d %5d %9.2f %9.3fs %5d\n" (alg_label alg)
         tp fp fn acc
         (if n = 0 then 0.0 else time /. float_of_int n)
         dnc)
    algorithms;
  Printf.printf
    "\npaper's accuracy scores: hybrid-unbounded 0.35, CS 0.54, CI 0.22\n";
  Printf.printf
    "paper's CS false negatives: BlueBlog 2, I 1, SBM 2 (thread flows)\n";
  List.iter
    (fun (a, runs) ->
       match
         List.find_opt
           (fun r -> r.Score.r_algorithm = Config.Cs_thin_slicing)
           runs
       with
       | Some { Score.r_classification = Some c; _ }
         when c.Score.false_negatives > 0 ->
         Printf.printf "measured CS false negatives on %-10s %d\n"
           a.Apps.name c.Score.false_negatives
       | _ -> ())
    all_runs

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let attribute_flow truth builder (fl : Flows.t) =
  let m = Sdg.Builder.node_meth builder fl.Flows.fl_sink.Sdg.Stmt.node in
  Ground_truth.attribute truth ~cls:m.Jir.Tac.m_class ~meth:m.Jir.Tac.m_name

let ablate_flowlen () =
  header "Ablation (6.2.2): flow length vs probability of a true positive";
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun (a : Apps.app) ->
       let g = Apps.generate ~scale:!scale a in
       let loaded = Taj.load (Codegen.to_input g) in
       match
         (Taj.run loaded (Config.preset ~scale:!scale Config.Hybrid_unbounded))
           .Taj.result
       with
       | Taj.Completed c ->
         List.iter
           (fun fl ->
              match attribute_flow g.Codegen.g_truth c.Taj.builder fl with
              | Some p ->
                let bucket = min 5 ((fl.Flows.fl_length - 1) / 4) in
                let t, f =
                  Option.value ~default:(0, 0) (Hashtbl.find_opt buckets bucket)
                in
                if p.Ground_truth.p_real then
                  Hashtbl.replace buckets bucket (t + 1, f)
                else Hashtbl.replace buckets bucket (t, f + 1)
              | None -> ())
           c.Taj.report.Report.raw_flows
       | Taj.Did_not_complete _ -> ())
    Apps.scored_apps;
  Printf.printf "%-14s %6s %6s %14s\n" "length bucket" "true" "false"
    "TP likelihood";
  List.iter
    (fun bucket ->
       match Hashtbl.find_opt buckets bucket with
       | Some (t, f) ->
         let label =
           if bucket >= 5 then ">20"
           else Printf.sprintf "%d-%d" (bucket * 4 + 1) (bucket * 4 + 4)
         in
         Printf.printf "%-14s %6d %6d %13.0f%%\n" label t f
           (100.0 *. float_of_int t /. float_of_int (max 1 (t + f)))
       | None -> ())
    [ 0; 1; 2; 3; 4; 5 ]

let ablate_depth () =
  header "Ablation (6.2.3): nested-taint depth bound";
  let sources =
    List.concat
      (List.init 3 (fun i ->
           let rng = Rng.create (i + 77) in
           [ (Patterns.carrier ~id:(100 + i) ~rng).Patterns.source;
             (Patterns.deep_carrier ~id:(200 + i) ~rng).Patterns.source ]))
  in
  let loaded =
    Taj.load { Taj.name = "depth-sweep"; app_sources = sources; descriptor = "" }
  in
  Printf.printf "%-7s %7s\n" "depth" "issues";
  List.iter
    (fun depth ->
       let config =
         { (Config.preset Config.Hybrid_unbounded) with
           Config.nested_taint_depth = depth }
       in
       match (Taj.run loaded config).Taj.result with
       | Taj.Completed c ->
         Printf.printf "%-7s %7d\n"
           (if depth < 0 then "inf" else string_of_int depth)
           (Report.issue_count c.Taj.report)
       | Taj.Did_not_complete _ -> Printf.printf "%-7d (dnc)\n" depth)
    [ 0; 1; 2; 3; 4; -1 ];
  Printf.printf
    "(shallow carriers are caught from depth 1; the 4-deep ones need >= 4;\n\
    \ the paper found depth 2 sufficient on real apps)\n"

let ablate_budget () =
  header "Ablation (6.1): priority-driven vs chaotic under a CG node budget";
  let a = Option.get (Apps.find "GridSphere") in
  let g = Apps.generate ~scale:!scale a in
  let loaded = Taj.load (Codegen.to_input g) in
  let truth = g.Codegen.g_truth in
  Printf.printf "%-9s %18s %18s\n" "budget" "prioritized TP/FN" "chaotic TP/FN";
  let tp_fn config =
    match (Taj.run loaded config).Taj.result with
    | Taj.Completed c ->
      let cl = Score.classify truth c.Taj.builder c.Taj.report in
      Printf.sprintf "%d/%d" cl.Score.true_positives cl.Score.false_negatives
    | Taj.Did_not_complete _ -> "-"
  in
  List.iter
    (fun budget ->
       let base = Config.preset ~scale:!scale Config.Hybrid_prioritized in
       let prio = { base with Config.max_cg_nodes = Some budget } in
       let fifo = { prio with Config.prioritized = false } in
       Printf.printf "%-9d %18s %18s\n" budget (tp_fn prio) (tp_fn fifo))
    [ 200; 400; 600; 800; 1000; 1500; 2000; 3000 ]

let inventory () =
  header "Analysis inventory per app (hybrid unbounded)";
  Printf.printf "%-14s %8s %8s %8s %9s %8s %9s\n" "application" "classes"
    "methods" "nodes" "edges" "sources" "flows";
  let row (a : Apps.app) =
    protected_row a.Apps.name @@ fun () ->
    let g = run_phase "generate" (fun () -> Apps.generate ~scale:!scale a) in
    let loaded =
      run_phase "frontend" (fun () -> Taj.load (Codegen.to_input g))
    in
    match
      (Taj.run loaded (Config.preset ~scale:!scale Config.Hybrid_unbounded))
        .Taj.result
    with
    | Taj.Completed c ->
      let st = Jir.Program.stats loaded.Taj.program in
      let seeds =
        List.fold_left
          (fun acc (rs : Engine.rule_stats) -> acc + rs.Engine.rs_seeds)
          0 c.Taj.outcome.Engine.rule_stats
      in
      Printf.sprintf "%-14s %8d %8d %8d %9d %8d %9d" a.Apps.name
        st.Jir.Program.st_app_classes st.Jir.Program.st_app_methods
        c.Taj.cg_nodes c.Taj.cg_edges seeds
        (Report.flow_count c.Taj.report)
    | Taj.Did_not_complete r ->
      Printf.sprintf "%-14s (did not complete: %s)" a.Apps.name r
  in
  List.iter print_endline (Parallel.map ~jobs:!jobs row Apps.table2)

(* RFC-4180 quoting: failure rows carry exception messages, which can
   contain commas, quotes or newlines and would otherwise shift every
   column after them. Clean fields pass through unquoted. *)
let csv_field = Obs.Csv.field

let csv () =
  header "CSV export: table3.csv and figure4.csv";
  let oc3 = open_out "table3.csv" in
  output_string oc3
    "app,algorithm,completed,issues,confirmed,plausible,seconds,t_frontend,\
     t_pointer,t_sdg,t_taint,cg_nodes,paper_issues,paper_seconds,\
     failed_phase,error\n";
  let oc4 = open_out "figure4.csv" in
  output_string oc4 "app,algorithm,tp,fp,fn,accuracy\n";
  let results =
    Parallel.map ~jobs:!jobs
      (fun a -> (a, Score.run_app_result ~scale:!scale ~refine:!refine a))
      Apps.table2
  in
  List.iter
    (fun ((a : Apps.app), res) ->
       match res with
       | Error (phase, err) ->
         (* a failed app still gets a machine-readable row: every
            per-algorithm field is empty/false, failed_phase says where
            the pipeline died and error carries the (quoted) message *)
         Printf.fprintf oc3 "%s,,false,0,,,0,,,,,0,,,%s,%s\n"
           (csv_field a.Apps.name) (csv_field phase) (csv_field err)
       | Ok runs ->
         List.iter
           (fun (r : Score.run) ->
              let paper =
                match r.Score.r_algorithm with
                | Config.Hybrid_unbounded -> a.Apps.paper.Apps.unbounded
                | Config.Hybrid_prioritized -> a.Apps.paper.Apps.prioritized
                | Config.Hybrid_optimized -> a.Apps.paper.Apps.optimized
                | Config.Cs_thin_slicing -> a.Apps.paper.Apps.cs
                | Config.Ci_thin_slicing -> a.Apps.paper.Apps.ci
                | Config.Type_triage -> a.Apps.paper.Apps.ci
              in
              let popt = function Some v -> string_of_int v | None -> "" in
              (* per-phase telemetry times; empty on did-not-complete rows *)
              let phases =
                match r.Score.r_phases with
                | Some t ->
                  Printf.sprintf "%.4f,%.4f,%.4f,%.4f" t.Taj.t_frontend
                    t.Taj.t_pointer t.Taj.t_sdg t.Taj.t_taint
                | None -> ",,,"
              in
              (* verdict columns stay empty unless --refine ran *)
              let confirmed, plausible =
                match r.Score.r_refined with
                | Some rf ->
                  ( string_of_int rf.Score.confirmed_issues,
                    string_of_int rf.Score.plausible_issues )
                | None -> ("", "")
              in
              Printf.fprintf oc3 "%s,%s,%b,%d,%s,%s,%.4f,%s,%d,%s,%s,,\n"
                (csv_field a.Apps.name)
                (Config.algorithm_name r.Score.r_algorithm)
                r.Score.r_completed r.Score.r_issues (csv_field confirmed)
                (csv_field plausible) r.Score.r_seconds phases
                r.Score.r_cg_nodes
                (popt paper.Apps.pr_issues)
                (popt paper.Apps.pr_seconds);
              if a.Apps.scored then
                match r.Score.r_classification with
                | Some c ->
                  Printf.fprintf oc4 "%s,%s,%d,%d,%d,%.3f\n"
                    (csv_field a.Apps.name)
                    (Config.algorithm_name r.Score.r_algorithm)
                    c.Score.true_positives c.Score.false_positives
                    c.Score.false_negatives (Score.accuracy c)
                | None -> ())
           runs)
    results;
  close_out oc3;
  close_out oc4;
  Printf.printf "wrote table3.csv and figure4.csv (scale %.2f)\n" !scale

let securibench () =
  header "SecuriBench-Micro-style suite: reported issues per configuration";
  Printf.printf "%-18s %5s | %4s %4s %4s %4s %4s\n" "case" "vuln" "Unb"
    "Prio" "Opt" "CS" "CI";
  let totals = Hashtbl.create 8 in
  let per_case =
    Parallel.map ~jobs:!jobs
      (fun (c : Securibench.case) ->
         List.map (fun alg -> Securibench.run_case ~algorithm:alg c) algorithms)
      Securibench.cases
  in
  List.iter2
    (fun (c : Securibench.case) results ->
       List.iter2
         (fun alg got ->
            let exp, match_ =
              Option.value ~default:(0, 0) (Hashtbl.find_opt totals alg)
            in
            Hashtbl.replace totals alg
              (exp + 1, match_ + if got = c.Securibench.sb_expected then 1 else 0))
         algorithms results;
       Printf.printf "%-18s %5d | %4s\n" c.Securibench.sb_name
         c.Securibench.sb_vulnerable
         (String.concat "  "
            (List.map (fun r -> if r < 0 then "-" else string_of_int r) results)))
    Securibench.cases per_case;
  Printf.printf "\nagreement with the hybrid-expected counts:\n";
  List.iter
    (fun alg ->
       match Hashtbl.find_opt totals alg with
       | Some (n, m) ->
         Printf.printf "  %-20s %d/%d cases\n" (alg_label alg) m n
       | None -> ())
    algorithms

let scaling () =
  header "Scaling: hybrid analysis cost vs application size";
  Printf.printf
    "(the paper's scalability claim: TAJ analyzes applications of\n\
    \ virtually any size; hybrid cost should grow near-linearly;\n\
    \ jobs = %d worker domain(s) inside each run)\n\n"
    !jobs;
  Printf.printf "%-8s %9s %9s %10s %10s %10s\n" "scale" "methods" "cg-nodes"
    "frontend" "hybrid" "ci";
  let a = Option.get (Apps.find "GridSphere") in
  (* rows stay sequential so each row's timing is uncontended; --jobs
     parallelizes the stages *inside* each load/run *)
  List.iter
    (fun s ->
       let g = Apps.generate ~scale:s a in
       let loaded, t_frontend =
         Obs.Telemetry.timed (fun () -> Taj.load ~jobs:!jobs (Codegen.to_input g))
       in
       let st = Jir.Program.stats loaded.Taj.program in
       let time_of alg =
         match
           Obs.Telemetry.timed (fun () ->
             (Taj.run ~jobs:!jobs loaded (Config.preset ~scale:s alg)).Taj.result)
         with
         | Taj.Completed c, t -> (t, c.Taj.cg_nodes)
         | Taj.Did_not_complete _, _ -> (nan, 0)
       in
       let t_hybrid, nodes = time_of Config.Hybrid_unbounded in
       let t_ci, _ = time_of Config.Ci_thin_slicing in
       Printf.printf "%-8.3f %9d %9d %9.3fs %9.3fs %9.3fs\n" s
         st.Jir.Program.st_app_methods nodes t_frontend t_hybrid t_ci)
    [ 0.02; 0.05; 0.1; 0.2; 0.4 ]

let ablate_bound_kind () =
  header
    "Ablation (6.2.1): heap-transition bound vs no-heap-SDG step bound";
  Printf.printf
    "(the paper: \"limiting the number of heap transitions yields better\n\
    \ overall results\" — both bounds at equal fractions of the unbounded\n\
    \ run's consumption, on the GridSphere stand-in)\n\n";
  let a = Option.get (Apps.find "GridSphere") in
  let g = Apps.generate ~scale:!scale a in
  let loaded = Taj.load (Codegen.to_input g) in
  let truth = g.Codegen.g_truth in
  let base = Config.preset ~scale:!scale Config.Hybrid_unbounded in
  (* measure the unbounded run's consumption *)
  match (Taj.run loaded base).Taj.result with
  | Taj.Did_not_complete _ -> print_endline "(unbounded run failed)"
  | Taj.Completed c0 ->
    let heap_total, step_total =
      List.fold_left
        (fun (h, s) (rs : Engine.rule_stats) ->
           (h + rs.Engine.rs_heap_transitions, s + rs.Engine.rs_visited))
        (0, 0) c0.Taj.outcome.Engine.rule_stats
    in
    Printf.printf "unbounded consumption: %d heap transitions, ~%d steps\n\n"
      heap_total step_total;
    Printf.printf "%-10s %20s %20s\n" "fraction" "heap-bound TP/FN"
      "step-bound TP/FN";
    let tp_fn config =
      match (Taj.run loaded config).Taj.result with
      | Taj.Completed c ->
        let cl = Score.classify truth c.Taj.builder c.Taj.report in
        Printf.sprintf "%d/%d" cl.Score.true_positives
          cl.Score.false_negatives
      | Taj.Did_not_complete _ -> "-"
    in
    List.iter
      (fun pct ->
         let frac v = max 1 (v * pct / 100) in
         let heap_cfg =
           { base with
             Config.max_heap_transitions = Some (frac heap_total) }
         in
         let step_cfg =
           { base with Config.max_slice_steps = Some (frac step_total) }
         in
         Printf.printf "%9d%% %20s %20s\n" pct (tp_fn heap_cfg)
           (tp_fn step_cfg))
      [ 10; 25; 50; 75; 100 ]

(* ------------------------------------------------------------------ *)
(* Service load generator                                             *)
(* ------------------------------------------------------------------ *)

let svc_clients = ref 4
let svc_requests = ref 25
let svc_cluster = ref false

(* N concurrent synthetic clients hammer an in-process Serve.Service:
   latency percentiles (exact, over the collected sample) and the count
   of every terminal outcome, including backpressure rejections — the
   service-mode analogue of the per-table timings above. *)
let service_bench () =
  header
    (Printf.sprintf
       "Service load: %d client(s) x %d request(s), %d worker(s)"
       !svc_clients !svc_requests !jobs);
  let inline_source =
    {|class Cell { String v; }
      class Page extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          Cell c = new Cell();
          c.v = req.getParameter("x");
          resp.getWriter().println(c.v);
          Connection conn = DriverManager.getConnection("jdbc:db");
          Statement st = conn.createStatement();
          st.executeQuery(c.v);
        }
      }|}
  in
  let config =
    { Serve.Service.default_config with
      workers = max 1 !jobs;
      queue_cap = max 8 (!svc_clients * 4);
      seed = 42 }
  in
  let t = Serve.Service.create ~config () in
  let lock = Mutex.create () in
  let responses = ref [] in
  let respond r =
    Mutex.lock lock;
    responses := r :: !responses;
    Mutex.unlock lock
  in
  let client ci () =
    for i = 0 to !svc_requests - 1 do
      let id = Printf.sprintf "c%d-r%d" ci i in
      let rq =
        (* every 4th request is a full benchmark app, the rest are small
           inline units: a bimodal job-size mix *)
        if (ci + i) mod 4 = 0 then
          Serve.Service.request ~app:"BlueBlog" ~scale:0.02 ~priority:2 id
        else Serve.Service.request ~source:inline_source ~priority:1 id
      in
      Serve.Service.submit t rq ~respond
    done
  in
  let wall0 = Unix.gettimeofday () in
  let doms =
    List.init !svc_clients (fun ci -> Domain.spawn (client ci))
  in
  List.iter Domain.join doms;
  Serve.Service.await_drained t;
  let wall = Unix.gettimeofday () -. wall0 in
  let rs = !responses in
  let count st =
    List.length
      (List.filter (fun r -> r.Serve.Service.rp_status = st) rs)
  in
  let lat =
    rs
    |> List.filter (fun r -> r.Serve.Service.rp_status <> Serve.Service.Rejected)
    |> List.map (fun r -> r.Serve.Service.rp_seconds)
    |> Array.of_list
  in
  (* exact nearest-rank percentiles over the raw samples — same helper
     the exporter tests against its log2-bucket estimates *)
  let pct q = Obs.Export.percentile lat q in
  Printf.printf "%-12s %9s\n" "outcome" "count";
  List.iter
    (fun st ->
       Printf.printf "%-12s %9d\n" (Serve.Service.status_name st) (count st))
    Serve.Service.[ Completed; Degraded; Rejected; Failed ];
  let h = Serve.Service.health t in
  Printf.printf "%-12s %9d\n" "retries" h.Serve.Service.h_retries;
  Printf.printf "%-12s %9d\n" "shed" h.Serve.Service.h_shed;
  (* one row per response; reasons can carry free-text exception
     messages, so the shared RFC-4180 writer quotes them *)
  let oc = open_out "service.csv" in
  Obs.Csv.write_row oc
    [ "id"; "status"; "reason"; "verdict"; "issues"; "degradations";
      "seconds" ];
  List.iter
    (fun (r : Serve.Service.response) ->
       Obs.Csv.write_row oc
         [ r.Serve.Service.rp_id;
           Serve.Service.status_name r.Serve.Service.rp_status;
           r.Serve.Service.rp_reason;
           Option.value ~default:"" r.Serve.Service.rp_verdict;
           string_of_int r.Serve.Service.rp_issues;
           string_of_int r.Serve.Service.rp_degradations;
           Printf.sprintf "%.4f" r.Serve.Service.rp_seconds ])
    rs;
  close_out oc;
  Printf.printf "wrote service.csv (%d rows)\n" (List.length rs);
  Printf.printf "\nlatency (submit to terminal, non-rejected):\n";
  List.iter
    (fun (label, q) -> Printf.printf "  %-5s %8.4fs\n" label (pct q))
    [ ("p50", 0.5); ("p90", 0.9); ("p95", 0.95); ("p99", 0.99);
      ("max", 1.0) ];
  Printf.printf
    "\n%d responses for %d submissions in %.3fs (%.1f jobs/s); clean \
     drain: %b\n"
    (List.length rs)
    (!svc_clients * !svc_requests)
    wall
    (float_of_int (List.length rs) /. wall)
    (Serve.Service.clean_drain h)

(* Cluster throughput: the same bimodal job mix pushed through the
   multi-process coordinator at 1, 2 and 4 workers. Submission and the
   supervision pump run on the main thread — the coordinator must stay
   single-domain so its forks (initial and respawn) are safe — so this
   measures end-to-end coordinator throughput, not client concurrency. *)
let cluster_service_bench () =
  header
    (Printf.sprintf "Service cluster throughput: %d request(s) at 1/2/4 workers"
       (!svc_clients * !svc_requests));
  let inline_source =
    {|class Cell { String v; }
      class Page extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          Cell c = new Cell();
          c.v = req.getParameter("x");
          resp.getWriter().println(c.v);
        }
      }|}
  in
  let total = !svc_clients * !svc_requests in
  Printf.printf "%8s %10s %10s %10s %10s\n" "workers" "completed" "failed"
    "wall(s)" "jobs/s";
  List.iter
    (fun size ->
       let config =
         { Serve.Cluster.default_config with
           size;
           announce = false;
           service =
             { Serve.Service.default_config with
               workers = max 1 !jobs;
               queue_cap = max 8 (2 * total);
               seed = 42 } }
       in
       let c = Serve.Cluster.create ~config () in
       let completed = ref 0 and failed = ref 0 and responses = ref 0 in
       let respond r =
         incr responses;
         match r.Serve.Service.rp_status with
         | Serve.Service.Completed | Serve.Service.Degraded ->
           incr completed
         | _ -> incr failed
       in
       let wall0 = Unix.gettimeofday () in
       for i = 0 to total - 1 do
         let id = Printf.sprintf "b%d" i in
         let rq =
           if i mod 4 = 0 then
             Serve.Service.request ~app:"BlueBlog" ~scale:0.02 ~priority:2
               id
           else Serve.Service.request ~source:inline_source ~priority:1 id
         in
         Serve.Cluster.submit c rq ~respond;
         (* interleave supervision so worker results drain while the
            batch streams in *)
         Serve.Cluster.pump c ~timeout:0.0
       done;
       while not (Serve.Cluster.idle c) do
         Serve.Cluster.pump c ~timeout:0.02
       done;
       Serve.Cluster.await_drained c;
       let wall = Unix.gettimeofday () -. wall0 in
       Printf.printf "%8d %10d %10d %10.3f %10.1f\n" size !completed
         !failed wall
         (float_of_int !responses /. wall))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                   *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel): pipeline phases on app 'Friki'";
  let a = Option.get (Apps.find "Friki") in
  let g = Apps.generate ~scale:!scale a in
  let input = Codegen.to_input g in
  let loaded = Taj.load input in
  let open Bechamel in
  let test_load =
    Test.make ~name:"frontend (parse+lower+ssa+rewrites)"
      (Staged.stage (fun () -> ignore (Taj.load input)))
  in
  let test_hybrid =
    Test.make ~name:"pointer+slice (hybrid unbounded)"
      (Staged.stage (fun () ->
           ignore
             (Taj.run loaded (Config.preset ~scale:!scale Config.Hybrid_unbounded))))
  in
  let test_ci =
    Test.make ~name:"pointer+slice (ci)"
      (Staged.stage (fun () ->
           ignore
             (Taj.run loaded (Config.preset ~scale:!scale Config.Ci_thin_slicing))))
  in
  let test_generate =
    Test.make ~name:"workload generation"
      (Staged.stage (fun () -> ignore (Apps.generate ~scale:!scale a)))
  in
  let tests =
    Test.make_grouped ~name:"taj"
      [ test_load; test_hybrid; test_ci; test_generate ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  List.iter
    (fun instance ->
       let tbl = Analyze.all ols instance raw in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
              Printf.printf "  %-50s %12.0f ns/run\n" name est
            | _ -> Printf.printf "  %-50s (no estimate)\n" name)
         tbl)
    instances

(* ------------------------------------------------------------------ *)
(* Incremental-cache benchmark                                        *)
(* ------------------------------------------------------------------ *)

(* Cold vs warm vs one-edit analysis latency through the incremental
   cache, per app. Two edit flavours, because they exercise different
   tiers: a comment edit changes the source digest but not the parsed
   AST, so the semantic result key still hits (the cheap case); a
   semantic edit (an appended class) forces re-analysis on top of warm
   ast/defuse entries. Writes incremental.csv. *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let edit_last f (input : Taj.input) =
  match List.rev input.Taj.app_sources with
  | [] -> input
  | last :: rest ->
    { input with Taj.app_sources = List.rev (f last :: rest) }

let incremental () =
  header "Incremental cache: cold vs warm vs one-edit latency";
  let options =
    { Supervisor.default_options with scale = !scale; jobs = !jobs }
  in
  let config = Config.preset ~scale:!scale Config.Hybrid_optimized in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "taj-bench-incr-%d" (Unix.getpid ()))
  in
  rm_rf root;
  let oc = open_out "incremental.csv" in
  output_string oc
    "app,cold_s,warm_s,comment_edit_s,semantic_edit_s,issues,\
     warm_speedup,comment_speedup,semantic_speedup\n";
  Printf.printf "%-14s %8s %8s %8s %8s | %7s %7s %7s\n" "application"
    "cold" "warm" "comment" "semantic" "w-spd" "c-spd" "s-spd";
  let totals = Array.make 4 0.0 in
  List.iter
    (fun (a : Apps.app) ->
       let input = Codegen.to_input (Apps.generate ~scale:!scale a) in
       let dir = Filename.concat root a.Apps.name in
       let cache = Cache.Incr.create ~dir in
       let timed input =
         let t0 = Unix.gettimeofday () in
         let o = Cache.Incr.analyze ~cache ~options ~config input in
         (o, Unix.gettimeofday () -. t0)
       in
       let cold, t_cold = timed input in
       let warm, t_warm = timed input in
       if warm.Cache.Incr.i_report <> cold.Cache.Incr.i_report then
         Printf.printf "  !! %s: warm report differs from cold\n"
           a.Apps.name;
       let _, t_comment =
         timed (edit_last (fun s -> s ^ "\n// one-line edit\n") input)
       in
       let _, t_semantic =
         timed
           (edit_last
              (fun s ->
                 s ^ "\nclass BenchProbeOrphan { int probe(int x) \
                      { return x; } }\n")
              input)
       in
       let spd t = if t > 0.0 then t_cold /. t else 0.0 in
       totals.(0) <- totals.(0) +. t_cold;
       totals.(1) <- totals.(1) +. t_warm;
       totals.(2) <- totals.(2) +. t_comment;
       totals.(3) <- totals.(3) +. t_semantic;
       Printf.printf "%-14s %8.3f %8.3f %8.3f %8.3f | %6.1fx %6.1fx %6.1fx\n"
         a.Apps.name t_cold t_warm t_comment t_semantic (spd t_warm)
         (spd t_comment) (spd t_semantic);
       Printf.fprintf oc "%s,%.4f,%.4f,%.4f,%.4f,%d,%.2f,%.2f,%.2f\n"
         (csv_field a.Apps.name) t_cold t_warm t_comment t_semantic
         cold.Cache.Incr.i_issues (spd t_warm) (spd t_comment)
         (spd t_semantic))
    Apps.table2;
  close_out oc;
  rm_rf root;
  let spd i = if totals.(i) > 0.0 then totals.(0) /. totals.(i) else 0.0 in
  Printf.printf "%s\n%-14s %8.3f %8.3f %8.3f %8.3f | %6.1fx %6.1fx %6.1fx\n"
    line "total" totals.(0) totals.(1) totals.(2) totals.(3) (spd 1)
    (spd 2) (spd 3);
  Printf.printf
    "wrote incremental.csv (scale %.2f); one-line (comment) edit: %.1fx\n"
    !scale (spd 2)

(* ------------------------------------------------------------------ *)

(* Triage vs full analysis: how much latency does rung zero save, and
   how coarse is its answer? One row per app — type-qualifier triage
   wall clock against the full Hybrid_optimized pipeline on the same
   loaded program. Writes triage.csv. *)
let triage_bench () =
  header "Type-triage rung zero vs full analysis";
  Printf.printf "%-14s %9s %9s %8s | %8s %8s\n" "application" "triage"
    "full" "speedup" "findings" "issues";
  let rows =
    Parallel.map ~jobs:!jobs
      (fun (a : Apps.app) ->
         let loaded =
           Taj.load (Codegen.to_input (Apps.generate ~scale:!scale a))
         in
         let verdict, t_triage =
           Obs.Telemetry.timed (fun () ->
               Taj.triage ~rules:Rules.default_rules loaded)
         in
         let analysis, t_full =
           Obs.Telemetry.timed (fun () ->
               Taj.run loaded (Config.preset ~scale:!scale Config.Hybrid_optimized))
         in
         let issues =
           match analysis.Taj.result with
           | Taj.Completed c -> Report.issue_count c.Taj.report
           | Taj.Did_not_complete _ -> 0
         in
         (a.Apps.name, t_triage, t_full,
          List.length (Triage.findings verdict), issues))
      Apps.table2
  in
  let oc = open_out "triage.csv" in
  Obs.Csv.write_row oc
    [ "app"; "triage_s"; "full_s"; "speedup"; "triage_findings";
      "full_issues" ];
  let sum_t = ref 0.0 and sum_f = ref 0.0 in
  List.iter
    (fun (name, t_triage, t_full, findings, issues) ->
       sum_t := !sum_t +. t_triage;
       sum_f := !sum_f +. t_full;
       let spd = if t_triage > 0.0 then t_full /. t_triage else 0.0 in
       Printf.printf "%-14s %8.3fs %8.3fs %7.1fx | %8d %8d\n" name
         t_triage t_full spd findings issues;
       Obs.Csv.write_row oc
         [ name; Printf.sprintf "%.4f" t_triage;
           Printf.sprintf "%.4f" t_full; Printf.sprintf "%.1f" spd;
           string_of_int findings; string_of_int issues ])
    rows;
  close_out oc;
  Printf.printf "%s\ntotal: triage %.3fs vs full %.3fs (%.1fx); wrote \
                 triage.csv (scale %.2f)\n"
    line !sum_t !sum_f
    (if !sum_t > 0.0 then !sum_f /. !sum_t else 0.0)
    !scale

(* ------------------------------------------------------------------ *)

(* Context-sensitive sanitization: the judge's cost and verdict mix on
   the ground-truth apps plus the scored Table 2 apps. One row per app —
   analysis wall clock with the judge off and on, the verdict counts,
   and the planted-mismatch recall. Writes contexts.csv. *)
let contexts_bench () =
  header "Context-sensitive sanitization judge";
  Printf.printf "%-14s %9s %9s %6s %7s %9s\n" "application" "off" "on"
    "mism" "unsanit" "expected";
  let apps = Apps.contexts_apps @ Apps.scored_apps in
  let rows =
    Parallel.map ~jobs:!jobs
      (fun (a : Apps.app) ->
         let g = Apps.generate ~scale:!scale a in
         let loaded = Taj.load (Codegen.to_input g) in
         let truth = g.Codegen.g_truth in
         let off =
           Score.run_config ~loaded ~truth ~app:a.Apps.name ~scale:!scale
             Config.Hybrid_optimized
         in
         let on =
           Score.run_config ~contexts:true ~loaded ~truth ~app:a.Apps.name
             ~scale:!scale Config.Hybrid_optimized
         in
         (a.Apps.name, off, on))
      apps
  in
  let oc = open_out "contexts.csv" in
  Obs.Csv.write_row oc
    [ "app"; "off_s"; "on_s"; "issues_off"; "issues_on"; "mismatched";
      "unsanitized"; "expected"; "matched" ];
  let missed = ref 0 in
  List.iter
    (fun (name, (off : Score.run), (on : Score.run)) ->
       let mism, unsan, expected, matched =
         match on.Score.r_sanitization with
         | Some s ->
           missed := !missed + (s.Score.sz_expected - s.Score.sz_matched);
           ( s.Score.sz_mismatched, s.Score.sz_unsanitized,
             s.Score.sz_expected, s.Score.sz_matched )
         | None -> (0, 0, 0, 0)
       in
       Printf.printf "%-14s %8.3fs %8.3fs %6d %7d %5d/%d\n" name
         off.Score.r_seconds on.Score.r_seconds mism unsan matched expected;
       Obs.Csv.write_row oc
         [ name; Printf.sprintf "%.4f" off.Score.r_seconds;
           Printf.sprintf "%.4f" on.Score.r_seconds;
           string_of_int off.Score.r_issues; string_of_int on.Score.r_issues;
           string_of_int mism; string_of_int unsan;
           string_of_int expected; string_of_int matched ])
    rows;
  close_out oc;
  Printf.printf "%s\nwrote contexts.csv (scale %.2f)\n" line !scale;
  if !missed > 0 then begin
    Printf.eprintf "%d planted sanitizer mismatch(es) missed\n" !missed;
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv in
  let rec parse cmds = function
    | [] -> cmds
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse cmds rest
    | "--jobs" :: v :: rest ->
      jobs := max 1 (int_of_string v);
      parse cmds rest
    | "--refine" :: rest ->
      refine := true;
      parse cmds rest
    | "--trace" :: v :: rest ->
      trace := Some v;
      parse cmds rest
    | "--metrics" :: rest ->
      metrics := true;
      parse cmds rest
    | "--clients" :: v :: rest ->
      svc_clients := max 1 (int_of_string v);
      parse cmds rest
    | "--requests" :: v :: rest ->
      svc_requests := max 1 (int_of_string v);
      parse cmds rest
    | "--cluster" :: rest ->
      svc_cluster := true;
      parse cmds rest
    | cmd :: rest -> parse (cmd :: cmds) rest
  in
  let cmds = List.rev (parse [] (List.tl args)) in
  let cmds = if cmds = [] then [ "all" ] else cmds in
  if !trace <> None || !metrics then Obs.Telemetry.enable ();
  let dispatch = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "table3" -> table3 ()
    | "figure4" -> figure4 ()
    | "summary" -> summary ()
    | "ablate-flowlen" -> ablate_flowlen ()
    | "ablate-depth" -> ablate_depth ()
    | "ablate-budget" -> ablate_budget ()
    | "ablate-bound-kind" -> ablate_bound_kind ()
    | "scaling" -> scaling ()
    | "securibench" -> securibench ()
    | "csv" -> csv ()
    | "inventory" -> inventory ()
    | "service" ->
      if !svc_cluster then cluster_service_bench () else service_bench ()
    | "incremental" -> incremental ()
    | "triage" -> triage_bench ()
    | "contexts" -> contexts_bench ()
    | "micro" -> micro ()
    | "all" ->
      table1 (); table2 (); table3 (); figure4 (); summary ();
      ablate_flowlen (); ablate_depth (); ablate_budget ();
      ablate_bound_kind (); scaling (); inventory ();
      securibench (); micro ()
    | other ->
      Printf.eprintf "unknown subcommand %s\n" other;
      exit 2
  in
  List.iter dispatch cmds;
  (match !trace with
   | Some path ->
     Obs.Telemetry.write_trace path;
     Printf.eprintf "trace written to %s\n" path
   | None -> ());
  if !metrics then Fmt.epr "%a@." Obs.Telemetry.pp_metrics ()
