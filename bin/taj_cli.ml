(* taj — command-line front end for the TAJ taint analysis.

   Subcommands:
     analyze   run taint analysis over .mjava source files
     dump-ir   print the SSA IR of a compiled program
     generate  emit one of the 22 synthetic benchmark applications
     apps      list the benchmark applications
     score     generate an app, analyze it and score against ground truth *)

open Cmdliner
open Core

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let algorithm_conv =
  let parse s =
    match s with
    | "hybrid" | "hybrid-unbounded" -> Ok Config.Hybrid_unbounded
    | "prioritized" | "hybrid-prioritized" -> Ok Config.Hybrid_prioritized
    | "optimized" | "hybrid-optimized" -> Ok Config.Hybrid_optimized
    | "cs" -> Ok Config.Cs_thin_slicing
    | "ci" -> Ok Config.Ci_thin_slicing
    | "triage" -> Ok Config.Type_triage
    | _ ->
      Error
        (`Msg
           "expected one of: hybrid, prioritized, optimized, cs, ci, \
            triage")
  in
  let print ppf a = Fmt.string ppf (Config.algorithm_name a) in
  Arg.conv (parse, print)

let algorithm =
  let doc =
    "Analysis configuration: hybrid (unbounded), prioritized, optimized, \
     cs, ci, or triage (the type-qualifier rung zero: findings without \
     flow paths)."
  in
  Arg.(value & opt algorithm_conv Config.Hybrid_optimized
       & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let scale =
  let doc = "Scale factor for workload sizes and analysis bounds." in
  Arg.(value & opt float 0.05 & info [ "scale" ] ~docv:"FLOAT" ~doc)

let jobs =
  let doc =
    "Worker domains for the parallel stages (frontend parse, per-rule \
     tabulation, per-configuration scoring). 1 runs fully sequentially; \
     any value produces identical results. Defaults to the TAJ_JOBS \
     environment variable, or the number of cores."
  in
  let default =
    match Core.Parallel.env_jobs () with
    | Some n -> n
    | None -> Core.Parallel.default_jobs ()
  in
  Arg.(value & opt int default & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let descriptor_file =
  let doc = "Deployment descriptor file (servlet/action/ejb lines)." in
  Arg.(value & opt (some file) None & info [ "d"; "descriptor" ] ~docv:"FILE" ~doc)

let trace_file =
  let doc =
    "Record a span trace of the run and write it to $(docv) as Chrome \
     trace-event JSON (loadable at chrome://tracing or ui.perfetto.dev). \
     Each worker domain gets its own track."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_flag =
  let doc =
    "Collect telemetry metrics (pointer propagations, SDG memo hit rates, \
     tabulation steps, ...) and print them as a table on stderr after the \
     run. With --json the metrics are also embedded in the JSON output."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let refine_flag =
  let doc =
    "Replay each reported flow with the field-sensitive access-path \
     refinement and classify it: $(b,confirmed) (the replay found a \
     complete field-sensitive witness) or $(b,plausible) (it did not, or \
     ran out of budget). Flows are demoted, never dropped."
  in
  Arg.(value & flag & info [ "refine" ] ~doc)

let refine_k =
  let doc = "Access-path depth bound for --refine." in
  Arg.(value & opt int 3 & info [ "refine-k" ] ~docv:"K" ~doc)

let refine_steps =
  let doc =
    "Per-flow replay step budget for --refine; exhaustion demotes the \
     flow to plausible."
  in
  Arg.(value & opt int 4096 & info [ "refine-steps" ] ~docv:"N" ~doc)

let with_refine cfg ~refine ~refine_k ~refine_steps =
  { cfg with Config.refine; refine_k; refine_steps }

let contexts_flag =
  let doc =
    "Context-sensitive sanitization (record-and-judge): propagate taint \
     through sanitizers instead of stopping at them, reconstruct the \
     string template of each sink value interprocedurally, and judge \
     every sanitizer on the path against the sink's syntactic context \
     (html-text, html-attribute, sql-quoted, sql-raw, path, shell). \
     Correctly-sanitized flows are dropped as before; flows whose \
     sanitizer does not protect the computed context are reported as \
     $(b,mismatched-sanitizer) with the applied/required pair."
  in
  Arg.(value & flag & info [ "contexts" ] ~doc)

let no_contexts_flag =
  let doc =
    "Force context-sensitive sanitization off (the default): sanitizers \
     kill flows where they are applied. Overrides --contexts."
  in
  Arg.(value & flag & info [ "no-contexts" ] ~doc)

let with_contexts cfg ~contexts ~no_contexts =
  { cfg with Config.contexts = contexts && not no_contexts }

let cache_dir_arg =
  let doc =
    "Persist and reuse the incremental analysis cache in $(docv): parsed \
     units, the frontend product, per-method def/use summaries and clean \
     final reports, each keyed by content digests. A re-run of unchanged \
     sources — or sources differing only in comments or whitespace — \
     reuses everything downstream of the change. A corrupted store file \
     is discarded with a diagnostic and the run proceeds cold."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let no_cache_flag =
  let doc = "Ignore --cache: analyze everything from scratch." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

(* the session (when caching is on) carries the open store and the hooks
   threaded into the supervisor; the caller commits it after the run *)
let cache_session ~cache_dir ~no_cache ~app =
  match (if no_cache then None else cache_dir) with
  | None -> None
  | Some dir ->
    let s = Cache.Incr.start (Cache.Incr.create ~dir) ~app in
    (match Cache.Incr.corruption s with
     | Some d -> Fmt.epr "%a@." Diagnostics.pp_degradation d
     | None -> ());
    Some s

(* persist whatever the run learned; a clean completed analysis also
   refreshes the summary tier and stores its rendered report *)
let cache_commit session ~config (outcome : Supervisor.outcome)
    (input : Taj.input) =
  match session with
  | None -> ()
  | Some s ->
    (match outcome.Supervisor.sv_analysis with
     | Some ({ Taj.result = Taj.Completed c; _ } as analysis)
       when (not (Report.is_partial c.Taj.report))
            && outcome.Supervisor.sv_diagnostics = [] ->
       let cr =
         { Cache.Incr.cr_report =
             Cache.Incr.render_report c.Taj.builder c.Taj.report;
           cr_issues = Report.issue_count c.Taj.report;
           cr_flows = Report.flow_count c.Taj.report }
       in
       let rules = Rules.default_rules in
       let keys =
         Cache.Incr.result_key ~rules ~config input
         :: Option.to_list
              (Cache.Incr.ast_result_key ~rules ~config
                 ~loaded:analysis.Taj.loaded s)
       in
       Cache.Incr.commit ~results:(List.map (fun k -> (k, cr)) keys)
         ~analysis:c s
     | _ -> Cache.Incr.commit s)

(* Telemetry stays off (single-atomic-load probes) unless one of the
   observability flags asks for it. *)
let telemetry_setup ~trace ~metrics =
  if trace <> None || metrics then Obs.Telemetry.enable ()

let telemetry_export ~trace ~metrics =
  (match trace with
   | Some path ->
     Obs.Telemetry.write_trace path;
     Printf.eprintf "trace written to %s\n" path
   | None -> ());
  if metrics then Fmt.epr "%a@." Obs.Telemetry.pp_metrics ()

let sources =
  let doc = "MJava source files to analyze." in
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)

let app_name =
  let doc = "Benchmark application name (see 'taj apps')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

(* EINTR-safe whole-file read: a drain signal arriving mid-read must not
   surface as a load failure. *)
let read_file = Io.read_file

let load_input ~name ~srcs ~descriptor_file =
  { Taj.name;
    app_sources = List.map read_file srcs;
    descriptor =
      (match descriptor_file with Some f -> read_file f | None -> "") }

(* ------------------------------------------------------------------ *)
(* analyze                                                            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let verdict_json = function
  | None -> "null"
  | Some v ->
    (match v with
     | Sdg.Refine.Confirmed ->
       Printf.sprintf "{ \"class\": \"%s\" }" (Sdg.Refine.verdict_name v)
     | Sdg.Refine.Plausible r ->
       Printf.sprintf "{ \"class\": \"%s\", \"reason\": \"%s\" }"
         (Sdg.Refine.verdict_name v)
         (json_escape (Sdg.Refine.reason_name r)))

(* the per-issue sanitization judgement: null when contexts were off *)
let sanitization_json (ir : Report.issue_report) =
  match ir.Report.ir_sanitization with
  | None -> "null"
  | Some v ->
    let template =
      match ir.Report.ir_template with
      | Some tpl ->
        Printf.sprintf "\"%s\""
          (json_escape (Fmt.str "%a" Strings.Template.pp tpl))
      | None -> "null"
    in
    (match v with
     | Strings.Context.Unsanitized ->
       Printf.sprintf
         "{ \"class\": \"unsanitized\", \"template\": %s }" template
     | Strings.Context.Sanitized ->
       Printf.sprintf "{ \"class\": \"sanitized\", \"template\": %s }"
         template
     | Strings.Context.Mismatched_sanitizer { applied; required } ->
       Printf.sprintf
         "{ \"class\": \"mismatched-sanitizer\", \"applied\": [%s], \
          \"required\": \"%s\", \"template\": %s }"
         (String.concat ", "
            (List.map
               (fun id -> Printf.sprintf "\"%s\"" (json_escape id))
               applied))
         (Strings.Context.name required)
         template)

let issues_json builder (report : Report.t) =
  let issue_json (ir : Report.issue_report) =
    let stmt_str s = Fmt.str "%a" (Report.pp_stmt builder) s in
    let path =
      ir.Report.ir_representative.Flows.fl_path
      |> List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape (stmt_str s)))
      |> String.concat ", "
    in
    Printf.sprintf
      "    { \"issue\": \"%s\", \"flows\": %d, \"sink\": \"%s\",\n\
      \      \"verdict\": %s,\n\
      \      \"sanitization\": %s,\n\
      \      \"remediation\": %s,\n\
      \      \"witness\": [%s] }"
      (Rules.issue_name ir.Report.ir_issue)
      ir.Report.ir_flow_count
      (json_escape (stmt_str ir.Report.ir_representative.Flows.fl_sink))
      (verdict_json ir.Report.ir_verdict)
      (sanitization_json ir)
      (match ir.Report.ir_lcp with
       | Some lcp -> Printf.sprintf "\"%s\"" (json_escape (stmt_str lcp))
       | None -> "null")
      path
  in
  String.concat ",\n" (List.map issue_json report.Report.issues)

let degradation_json d =
  Printf.sprintf "    { \"kind\": \"%s\", \"detail\": \"%s\" }"
    (Diagnostics.kind_name d)
    (json_escape (Fmt.str "%a" Diagnostics.pp_degradation d))

let attempt_json (a : Supervisor.attempt) =
  Printf.sprintf
    "    { \"algorithm\": \"%s\", \"scale\": %g, \"outcome\": \"%s\", \
     \"seconds\": %.3f }"
    (Config.algorithm_name a.Supervisor.at_algorithm)
    a.Supervisor.at_scale
    (json_escape a.Supervisor.at_outcome)
    a.Supervisor.at_seconds

let triage_finding_json (f : Triage.finding) =
  Printf.sprintf
    "    { \"issue\": \"%s\", \"rule\": \"%s\", \"class\": \"%s\", \
     \"method\": \"%s\", \"sink\": \"%s\", \"qualifier\": \"%s\" }"
    (json_escape f.Triage.f_issue) (json_escape f.Triage.f_rule)
    (json_escape f.Triage.f_class) (json_escape f.Triage.f_meth)
    (json_escape f.Triage.f_sink)
    (Triage.qual_name f.Triage.f_qual)

(* issues + the supervisor's diagnostics block; [builder] is absent exactly
   when no attempt completed, in which case the report has no issues.
   [completed] (the successful attempt, when there is one) contributes the
   worker-pool size and the per-phase wall-clock breakdown. *)
let emit_json ?builder ?completed (outcome : Supervisor.outcome)
    (report : Report.t) =
  let issues =
    match builder with Some b -> issues_json b report | None -> ""
  in
  let timing =
    match (completed : Taj.completed option) with
    | None -> ""
    | Some c ->
      Printf.sprintf
        "  \"jobs\": %d,\n\
        \  \"phases\": { \"frontend\": %.3f, \"pointer\": %.3f, \
         \"sdg\": %.3f, \"taint\": %.3f, \"total\": %.3f },\n"
        c.Taj.jobs c.Taj.times.Taj.t_frontend c.Taj.times.Taj.t_pointer
        c.Taj.times.Taj.t_sdg c.Taj.times.Taj.t_taint c.Taj.times.Taj.t_total
  in
  let metrics =
    if Obs.Telemetry.enabled () then
      Printf.sprintf "  \"metrics\": %s,\n" (Obs.Telemetry.metrics_json ())
    else ""
  in
  (* always present, null when refinement did not run — failure paths
     included, so consumers can branch on it unconditionally *)
  let refined =
    match completed with
    | Some c ->
      (match c.Taj.outcome.Engine.refined with
       | Some rf ->
         Printf.sprintf
           "  \"refined\": { \"confirmed\": %d, \"plausible\": %d, \
            \"replay_steps\": %d, \"heap_transitions\": %d, \
            \"widened\": %d, \"budget_demotions\": %d },\n"
           rf.Engine.rf_confirmed rf.Engine.rf_plausible rf.Engine.rf_steps
           rf.Engine.rf_heap_transitions rf.Engine.rf_widened
           rf.Engine.rf_budget
       | None -> "  \"refined\": null,\n")
    | None -> "  \"refined\": null,\n"
  in
  (* present exactly when the run answered at the type-triage rung zero:
     type-level findings, no flow paths *)
  let triage_block =
    match outcome.Supervisor.sv_triage with
    | None -> ""
    | Some v ->
      Printf.sprintf
        "  \"triage\": { \"verdict\": \"type_only\", \"findings\": \
         [\n%s\n  ] },\n"
        (String.concat ",\n"
           (List.map triage_finding_json (Triage.findings v)))
  in
  Printf.printf
    "{\n\
    \  \"issues\": [\n%s\n  ],\n\
    \  \"completeness\": \"%s\",\n\
     %s%s%s%s\
    \  \"diagnostics\": [\n%s\n  ],\n\
    \  \"attempts\": [\n%s\n  ]\n\
     }\n"
    issues
    (match report.Report.completeness with
     | Report.Complete -> "complete"
     | Report.Partial _ -> "partial"
     | Report.Type_only _ -> "type_only")
    timing refined triage_block metrics
    (String.concat ",\n"
       (List.map degradation_json outcome.Supervisor.sv_diagnostics))
    (String.concat ",\n"
       (List.map attempt_json outcome.Supervisor.sv_attempts))

let analyze_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print analysis statistics to stderr.")
  in
  let csrf =
    Arg.(value & flag
         & info [ "csrf" ]
             ~doc:"Also run the CSRF reachability check on GET handlers.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:
               "Wall-clock deadline for the whole analysis. On expiry \
                mid-phase the flows found so far are reported as a partial \
                result (exit status 4).")
  in
  let no_degrade =
    Arg.(value & flag
         & info [ "no-degrade" ]
             ~doc:
               "Fail fast when a budget is exhausted instead of retrying \
                with progressively stricter bounded configurations.")
  in
  let verify_ir =
    Arg.(value & flag
         & info [ "verify-ir" ]
             ~doc:
               "Verify IR well-formedness (branch/register ranges, SSA \
                single assignment and def-before-use) after loading — \
                i.e. after the reflection and exception rewrites. Any \
                violation is printed, emitted in the JSON diagnostics \
                block, and exits with status 6.")
  in
  let triage =
    Arg.(value & flag
         & info [ "triage" ]
             ~doc:
               "Run only the type-qualifier triage (rung zero of the \
                degradation ladder): no pointer analysis, no slicing — \
                type-level findings with no flow paths, in milliseconds. \
                Equivalent to --algorithm triage.")
  in
  let no_triage_filter =
    Arg.(value & flag
         & info [ "no-triage-filter" ]
             ~doc:
               "Disable the triage pre-filter that skips \
                provably-untaint-reachable methods during dependence-graph \
                construction and rules with no matched source. The report \
                is byte-identical either way; this exists for \
                cross-checking and for timing the filter's effect.")
  in
  let run algorithm scale jobs descriptor_file srcs json stats csrf deadline
      no_degrade verify_ir triage no_triage_filter refine refine_k
      refine_steps contexts no_contexts trace metrics cache_dir no_cache =
    let algorithm = if triage then Config.Type_triage else algorithm in
    let input = load_input ~name:"cli" ~srcs ~descriptor_file in
    let session = cache_session ~cache_dir ~no_cache ~app:input.Taj.name in
    let options =
      { Supervisor.default_options with
        deadline;
        degrade = not no_degrade;
        scale;
        jobs;
        cache =
          (match session with
           | Some s -> Cache.Incr.hooks s
           | None -> Cache_iface.none) }
    in
    telemetry_setup ~trace ~metrics;
    (* --stats percentiles come from the telemetry histograms, so stats
       implies recording *)
    if stats then Obs.Telemetry.enable ();
    if verify_ir then begin
      let loaded =
        match Taj.load ~lenient:true ~jobs input with
        | loaded -> loaded
        | exception Taj.Load_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      in
      match Jir.Verify.check_program loaded.Taj.program with
      | [] -> Printf.eprintf "IR verification passed\n"
      | violations ->
        Printf.eprintf "IR verification failed (%d violation(s)):\n"
          (List.length violations);
        List.iter
          (fun v -> Fmt.epr "  %a@." Jir.Verify.pp_violation v)
          violations;
        if json then begin
          let events =
            List.map
              (fun (v : Jir.Verify.violation) ->
                 Diagnostics.Ir_violation
                   { meth = v.Jir.Verify.v_method;
                     where = v.Jir.Verify.v_where;
                     message = v.Jir.Verify.v_message })
              violations
          in
          let outcome =
            { Supervisor.sv_analysis = None;
              sv_report = Report.empty ~completeness:(Report.Partial events);
              sv_triage = None;
              sv_diagnostics = events;
              sv_attempts = [];
              sv_elapsed = 0.0 }
          in
          emit_json outcome outcome.Supervisor.sv_report
        end;
        telemetry_export ~trace ~metrics;
        exit 6
    end;
    let config =
      { (with_contexts
           (with_refine (Config.preset ~scale algorithm) ~refine ~refine_k
              ~refine_steps)
           ~contexts ~no_contexts)
        with
        Config.cache_dir = (if no_cache then None else cache_dir);
        triage_filter = not no_triage_filter }
    in
    let outcome = Supervisor.run ~options ~config input in
    cache_commit session ~config outcome input;
    (* export before the exit-code branches so a partial or failed run
       still yields its trace and metrics *)
    telemetry_export ~trace ~metrics;
    let degradations = outcome.Supervisor.sv_diagnostics in
    match outcome.Supervisor.sv_triage with
    | Some v ->
      (* the run answered at rung zero — requested (--triage) or after
         every slicing rung failed: type-level findings, no flow paths *)
      let findings = Triage.findings v in
      if json then emit_json outcome outcome.Supervisor.sv_report
      else begin
        Printf.printf
          "TYPE_ONLY RESULT — type-qualifier triage, no flow paths (%d \
           finding(s))\n"
          (List.length findings);
        List.iter (fun f -> Fmt.pr "  %a@." Triage.pp_finding f) findings
      end;
      if degradations <> [] then begin
        Printf.eprintf "analysis degraded (%d event(s)):\n"
          (List.length degradations);
        List.iter
          (fun d -> Fmt.epr "  %a@." Diagnostics.pp_degradation d)
          degradations
      end;
      exit 5
    | None ->
    match outcome.Supervisor.sv_analysis with
    | None ->
      (* even the lenient frontend could not produce a program *)
      Printf.eprintf "error: analysis could not start\n";
      List.iter
        (fun d -> Fmt.epr "  %a@." Diagnostics.pp_degradation d)
        degradations;
      if json then emit_json outcome outcome.Supervisor.sv_report;
      exit 1
    | Some { Taj.result = Taj.Did_not_complete reason; _ } ->
      Printf.eprintf "analysis did not complete: %s\n" reason;
      List.iter
        (fun d -> Fmt.epr "  %a@." Diagnostics.pp_degradation d)
        degradations;
      if json then emit_json outcome outcome.Supervisor.sv_report;
      exit 3
    | Some ({ Taj.result = Taj.Completed c; _ } as analysis) ->
      if stats then begin
        Printf.eprintf
          "call-graph: %d nodes, %d edges; jobs %d; frontend %.3fs, \
           pointer %.3fs, sdg %.3fs, taint %.3fs, total %.3fs\n"
          c.Taj.cg_nodes c.Taj.cg_edges c.Taj.jobs
          c.Taj.times.Taj.t_frontend c.Taj.times.Taj.t_pointer
          c.Taj.times.Taj.t_sdg c.Taj.times.Taj.t_taint
          c.Taj.times.Taj.t_total;
        (* distribution shape of every histogram the run populated *)
        List.iter
          (fun (name, v) ->
             match v with
             | Obs.Telemetry.V_histogram h
               when h.Obs.Telemetry.hs_count > 0 ->
               Printf.eprintf
                 "  %s: n %d, max %d, p50 %d, p95 %d, p99 %d\n" name
                 h.Obs.Telemetry.hs_count h.Obs.Telemetry.hs_max
                 (Obs.Telemetry.snapshot_quantile h 0.50)
                 (Obs.Telemetry.snapshot_quantile h 0.95)
                 (Obs.Telemetry.snapshot_quantile h 0.99)
             | _ -> ())
          (Obs.Telemetry.metrics ())
      end;
      (* supervisor-level events (downgrades etc.) that are not already
         part of the report's partial block go to stderr *)
      if degradations <> [] && not (Report.is_partial c.Taj.report) then begin
        Printf.eprintf "analysis degraded (%d event(s)):\n"
          (List.length degradations);
        List.iter
          (fun d -> Fmt.epr "  %a@." Diagnostics.pp_degradation d)
          degradations
      end;
      if json then
        emit_json ~builder:c.Taj.builder ~completed:c outcome c.Taj.report
      else begin
        Fmt.pr "%a@." (Report.pp c.Taj.builder) c.Taj.report;
        (* string-context diagnostics where a template is recoverable *)
        List.iter
          (fun ir ->
             match
               String_context.diagnose c.Taj.builder
                 ir.Report.ir_representative
             with
             | Some d ->
               Fmt.pr "  context [%s]: %s@."
                 (Rules.issue_name ir.Report.ir_issue) d
             | None -> ())
          c.Taj.report.Report.issues
      end;
      let csrf_findings =
        if csrf then begin
          let fs =
            Csrf.detect ~prog:analysis.Taj.loaded.Taj.program
              ~builder:c.Taj.builder c.Taj.andersen
          in
          List.iter
            (fun f -> Fmt.pr "%a@." (Csrf.pp_finding c.Taj.builder) f)
            fs;
          List.length fs
        end
        else 0
      in
      if Report.is_partial c.Taj.report then exit 4;
      if Report.issue_count c.Taj.report > 0 || csrf_findings > 0 then exit 2
  in
  let doc = "Run taint analysis over MJava sources." in
  let man =
    [ `S Manpage.s_exit_status;
      `P "0 on a clean, complete analysis with no findings.";
      `P "1 if the sources could not be loaded at all.";
      `P "2 if the analysis completed and reported issues.";
      `P
        "3 if no configuration on the degradation ladder completed \
         (the CS fate on large applications).";
      `P
        "4 if the deadline expired mid-phase: the report holds the flows \
         found so far and is explicitly partial.";
      `P
        "5 if the run answered at the type-triage rung zero — requested \
         with --triage, or because every slicing rung failed: the \
         findings are type-level, with no flow paths.";
      `P "6 if --verify-ir found IR well-formedness violations." ]
  in
  Cmd.v (Cmd.info "analyze" ~doc ~man)
    Term.(const run $ algorithm $ scale $ jobs $ descriptor_file $ sources
          $ json $ stats $ csrf $ deadline $ no_degrade $ verify_ir
          $ triage $ no_triage_filter $ refine_flag $ refine_k
          $ refine_steps $ contexts_flag $ no_contexts_flag
          $ trace_file $ metrics_flag $ cache_dir_arg
          $ no_cache_flag)

(* ------------------------------------------------------------------ *)
(* dump-ir                                                            *)
(* ------------------------------------------------------------------ *)

let dump_ir_cmd =
  let meth_filter =
    Arg.(value & opt (some string) None
         & info [ "m"; "method" ] ~docv:"ID"
             ~doc:"Only print the method with this id (Class.name/arity).")
  in
  let run descriptor_file srcs meth_filter =
    let input = load_input ~name:"cli" ~srcs ~descriptor_file in
    match Taj.load input with
    | exception Taj.Load_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | loaded ->
      let prog = loaded.Taj.program in
      let ids =
        match meth_filter with
        | Some id -> [ id ]
        | None ->
          List.filter
            (fun id ->
               match Jir.Program.find_method prog id with
               | Some m -> not m.Jir.Tac.m_library
               | None -> false)
            (Jir.Program.all_method_ids prog)
      in
      List.iter
        (fun id ->
           match Jir.Program.find_method prog id with
           | Some m -> Fmt.pr "%a@." Jir.Tac.pp_meth m
           | None -> Printf.eprintf "no such method: %s\n" id)
        ids
  in
  let doc = "Print the SSA IR of the compiled program." in
  Cmd.v (Cmd.info "dump-ir" ~doc)
    Term.(const run $ descriptor_file $ sources $ meth_filter)

(* ------------------------------------------------------------------ *)
(* explain                                                            *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run scale jobs descriptor_file srcs =
    let input = load_input ~name:"cli" ~srcs ~descriptor_file in
    let loaded =
      match Taj.load ~jobs input with
      | loaded -> loaded
      | exception Taj.Load_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    match
      Taj.run ~jobs loaded (Config.preset ~scale Config.Hybrid_unbounded)
    with
    | { Taj.result = Taj.Did_not_complete reason; _ } ->
      Printf.eprintf "analysis did not complete: %s\n" reason;
      exit 3
    | { Taj.result = Taj.Completed c; _ } ->
      let b = c.Taj.builder in
      let table = loaded.Taj.program.Jir.Program.table in
      (* each issue's explanation is an independent backward slice over the
         shared read-only SDG: render them in parallel, print in order *)
      if jobs > 1 then Sdg.Builder.precompute b;
      let explain_issue (i, (ir : Report.issue_report)) =
        let buf = Buffer.create 256 in
        let ppf = Fmt.with_buffer buf in
        let m = Rules.matcher table in
        let fl = ir.Report.ir_representative in
        Fmt.pf ppf "@.== issue %d [%a] sink %a@." (i + 1) Rules.pp_issue
          ir.Report.ir_issue (Report.pp_stmt b) fl.Flows.fl_sink;
        (* backward-slice every sensitive argument of the sink *)
        (match Sdg.Builder.call_of b fl.Flows.fl_sink with
         | Some call ->
           let sensitive =
             match Rules.sink_of m fl.Flows.fl_rule call.Jir.Tac.target with
             | Some sink -> sink.Rules.snk_params
             | None -> [ List.length call.Jir.Tac.args - 1 ]
           in
           List.iter
             (fun arg ->
                let r =
                  Sdg.Backward.slice b ~table ~from:fl.Flows.fl_sink ~arg
                    ~max_stmts:2000 ()
                in
                let producers =
                  Sdg.Backward.source_endpoints b r ~is_source:(fun t ->
                      List.exists
                        (fun rule -> Rules.source_of m rule t <> None)
                        Rules.default_rules)
                in
                Fmt.pf ppf "  argument %d: %d producer statement(s), %d \
                            untrusted source(s)@."
                  arg
                  (Sdg.Stmt.Set.cardinal r.Sdg.Backward.slice)
                  (List.length producers);
                List.iter
                  (fun s -> Fmt.pf ppf "    source: %a@." (Report.pp_stmt b) s)
                  producers)
             sensitive
         | None -> ());
        Buffer.contents buf
      in
      let issues =
        List.mapi (fun i ir -> (i, ir)) c.Taj.report.Report.issues
      in
      List.iter print_string (Parallel.map ~jobs explain_issue issues);
      if c.Taj.report.Report.issues = [] then
        print_endline "no issues to explain"
  in
  let doc =
    "Explain reported issues: backward thin slices from each sink showing \
     every contributing untrusted source."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ scale $ jobs $ descriptor_file $ sources)

(* ------------------------------------------------------------------ *)
(* jsp                                                                *)
(* ------------------------------------------------------------------ *)

let jsp_cmd =
  let pages =
    let doc = "JSP files to translate (the class name is the basename)." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PAGE" ~doc)
  in
  let analyze_flag =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Analyze the translated pages instead of printing them.")
  in
  let class_name_of path =
    let base = Filename.remove_extension (Filename.basename path) in
    String.mapi
      (fun i c ->
         if i = 0 then Char.uppercase_ascii c
         else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                 || (c >= '0' && c <= '9')
         then c
         else '_')
      base
  in
  let run algorithm scale jobs pages analyze_flag =
    let sources =
      List.map
        (fun path ->
           match
             Models.Jsp.translate ~name:(class_name_of path) (read_file path)
           with
           | src -> src
           | exception Models.Jsp.Jsp_error msg ->
             Printf.eprintf "%s: %s\n" path msg;
             exit 1)
        pages
    in
    if not analyze_flag then List.iter print_string sources
    else begin
      let input = { Taj.name = "jsp"; app_sources = sources; descriptor = "" } in
      match
        Taj.analyze ~jobs ~config:(Config.preset ~scale algorithm) input
      with
      | exception Taj.Load_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
      | { Taj.result = Taj.Did_not_complete reason; _ } ->
        Printf.eprintf "analysis did not complete: %s\n" reason;
        exit 3
      | { Taj.result = Taj.Completed c; _ } ->
        Fmt.pr "%a@." (Report.pp c.Taj.builder) c.Taj.report;
        if Report.issue_count c.Taj.report > 0 then exit 2
    end
  in
  let doc = "Translate JSP pages to servlets (and optionally analyze them)." in
  Cmd.v (Cmd.info "jsp" ~doc)
    Term.(const run $ algorithm $ scale $ jobs $ pages $ analyze_flag)

(* ------------------------------------------------------------------ *)
(* graph                                                              *)
(* ------------------------------------------------------------------ *)

let graph_cmd =
  let what =
    Arg.(value & opt (enum [ ("callgraph", `Callgraph); ("flows", `Flows) ])
           `Flows
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"What to render: 'callgraph' or 'flows' (default).")
  in
  let run scale descriptor_file srcs what =
    let input = load_input ~name:"cli" ~srcs ~descriptor_file in
    let loaded =
      match Taj.load input with
      | loaded -> loaded
      | exception Taj.Load_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    match Taj.run loaded (Config.preset ~scale Config.Hybrid_unbounded) with
    | { Taj.result = Taj.Did_not_complete reason; _ } ->
      Printf.eprintf "analysis did not complete: %s\n" reason;
      exit 3
    | { Taj.result = Taj.Completed c; _ } ->
      (match what with
       | `Callgraph -> print_string (Dot.callgraph c.Taj.andersen)
       | `Flows -> print_string (Dot.report c.Taj.builder c.Taj.report))
  in
  let doc = "Emit Graphviz DOT for the call graph or the reported flows." in
  Cmd.v (Cmd.info "graph" ~doc)
    Term.(const run $ scale $ descriptor_file $ sources $ what)

(* ------------------------------------------------------------------ *)
(* generate / apps / score                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let out_dir =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"DIR"
             ~doc:
               "Write the units as $(docv)/unit_NNN.mjava (plus \
                $(docv)/web.xml for the deployment descriptor) instead of \
                printing to stdout — the form 'taj analyze' consumes \
                directly.")
  in
  let run name scale out_dir =
    match Workloads.Apps.find name with
    | None ->
      Printf.eprintf "unknown app %s (see 'taj apps')\n" name;
      exit 1
    | Some app ->
      let g = Workloads.Apps.generate ~scale app in
      (match out_dir with
       | Some dir ->
         (* mkdir -p: the target is typically nested (e.g. gen/AppName) *)
         let rec mkdirs d =
           if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d)
           then begin
             mkdirs (Filename.dirname d);
             Unix.mkdir d 0o755
           end
         in
         mkdirs dir;
         let write = Io.write_file in
         List.iteri
           (fun i src ->
              write (Filename.concat dir (Printf.sprintf "unit_%03d.mjava" i))
                src)
           g.Workloads.Codegen.g_sources;
         if g.Workloads.Codegen.g_descriptor <> "" then
           write (Filename.concat dir "web.xml")
             g.Workloads.Codegen.g_descriptor;
         Printf.eprintf "wrote %d unit(s)%s to %s\n"
           (List.length g.Workloads.Codegen.g_sources)
           (if g.Workloads.Codegen.g_descriptor <> "" then " + web.xml"
            else "")
           dir
       | None ->
         List.iteri
           (fun i src -> Printf.printf "// ---- unit %d ----\n%s\n" i src)
           g.Workloads.Codegen.g_sources;
         if g.Workloads.Codegen.g_descriptor <> "" then
           Printf.printf "// ---- deployment descriptor ----\n%s"
             g.Workloads.Codegen.g_descriptor);
      Printf.eprintf "planted ground truth:\n";
      List.iter
        (fun p -> Fmt.epr "  %a@." Workloads.Ground_truth.pp_planted p)
        g.Workloads.Codegen.g_truth
  in
  let doc = "Emit the MJava source of a synthetic benchmark application." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ app_name $ scale $ out_dir)

let apps_cmd =
  let run () =
    Printf.printf "%-14s %-12s %8s %8s %7s\n" "name" "version" "classes"
      "methods" "scored";
    List.iter
      (fun (a : Workloads.Apps.app) ->
         Printf.printf "%-14s %-12s %8d %8d %7s\n" a.Workloads.Apps.name
           a.Workloads.Apps.version a.Workloads.Apps.classes_app
           a.Workloads.Apps.methods_app
           (if a.Workloads.Apps.scored then "yes" else "-"))
      Workloads.Apps.table2
  in
  let doc = "List the 22 benchmark applications of Table 2." in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

let score_cmd =
  let rung_flag =
    Arg.(value & flag
         & info [ "rung" ]
             ~doc:
               "Score every rung of the degradation ladder instead of the \
                five configurations: the requested algorithm first, then \
                each supervisor fallback, ending at the type-triage rung \
                zero. Rung zero over-approximates, so it must keep every \
                planted true positive; only precision may drop.")
  in
  let rung_csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"With --rung, also write the per-rung table to $(docv).")
  in
  let score_no_filter =
    Arg.(value & flag
         & info [ "no-triage-filter" ]
             ~doc:
               "Score with the triage pre-filter disabled. The filter is \
                metamorphic — it may only skip provably taint-free work — \
                so the scored reports must be identical either way; this \
                flag exists for CI to check exactly that.")
  in
  let run_rungs app ~scale ~jobs ~algorithm ~csv =
    let rows =
      Workloads.Score.run_rungs ~scale ~jobs ~algorithm app
    in
    Printf.printf "%-20s %7s %5s %5s %5s %9s %8s\n" "rung" "issues" "TP"
      "FP" "FN" "accuracy" "time";
    List.iter
      (fun (r : Workloads.Score.rung_run) ->
         match r.Workloads.Score.rr_classification with
         | None ->
           Printf.printf "%-20s (did not complete)\n"
             r.Workloads.Score.rr_rung
         | Some c ->
           Printf.printf "%-20s %7d %5d %5d %5d %9.2f %7.2fs\n"
             r.Workloads.Score.rr_rung r.Workloads.Score.rr_issues
             c.Workloads.Score.true_positives
             c.Workloads.Score.false_positives
             c.Workloads.Score.false_negatives
             (Workloads.Score.accuracy c) r.Workloads.Score.rr_seconds)
      rows;
    match csv with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      Obs.Csv.write_row oc
        [ "rung"; "completed"; "issues"; "tp"; "fp"; "fn"; "accuracy";
          "seconds" ];
      List.iter
        (fun (r : Workloads.Score.rung_run) ->
           let c, tp, fp, fn, acc =
             match r.Workloads.Score.rr_classification with
             | None -> (false, "", "", "", "")
             | Some c ->
               ( true,
                 string_of_int c.Workloads.Score.true_positives,
                 string_of_int c.Workloads.Score.false_positives,
                 string_of_int c.Workloads.Score.false_negatives,
                 Printf.sprintf "%.3f" (Workloads.Score.accuracy c) )
           in
           Obs.Csv.write_row oc
             [ r.Workloads.Score.rr_rung; string_of_bool c;
               string_of_int r.Workloads.Score.rr_issues; tp; fp; fn; acc;
               Printf.sprintf "%.4f" r.Workloads.Score.rr_seconds ])
        rows;
      close_out oc;
      Printf.printf "wrote %s\n" file
  in
  let run name algorithm rung csv no_filter scale jobs refine refine_k
      refine_steps contexts trace metrics =
    match Workloads.Apps.find name with
    | None ->
      Printf.eprintf "unknown app %s\n" name;
      exit 1
    | Some app when rung ->
      telemetry_setup ~trace ~metrics;
      run_rungs app ~scale ~jobs ~algorithm ~csv;
      telemetry_export ~trace ~metrics
    | Some app ->
      telemetry_setup ~trace ~metrics;
      let runs =
        Workloads.Score.run_app ~scale ~jobs ~refine ~refine_k ~refine_steps
          ~triage_filter:(not no_filter) ~contexts app
      in
      telemetry_export ~trace ~metrics;
      if refine then
        Printf.printf "%-20s %7s %5s %5s %5s %9s %5s %5s %8s %8s\n"
          "configuration" "issues" "TP" "FP" "FN" "accuracy" "conf" "plaus"
          "conf-FP" "time"
      else if contexts then
        Printf.printf "%-20s %7s %5s %5s %5s %9s %6s %7s %8s %8s\n"
          "configuration" "issues" "TP" "FP" "FN" "accuracy" "mism"
          "unsanit" "expected" "time"
      else
        Printf.printf "%-20s %7s %5s %5s %5s %9s %8s\n" "configuration"
          "issues" "TP" "FP" "FN" "accuracy" "time";
      let missed = ref 0 in
      List.iter
        (fun (r : Workloads.Score.run) ->
           match r.Workloads.Score.r_classification with
           | None ->
             Printf.printf "%-20s (did not complete)\n"
               (Config.algorithm_name r.Workloads.Score.r_algorithm)
           | Some c ->
             (match r.Workloads.Score.r_refined with
              | Some rf when refine ->
                Printf.printf
                  "%-20s %7d %5d %5d %5d %9.2f %5d %5d %8d %7.2fs\n"
                  (Config.algorithm_name r.Workloads.Score.r_algorithm)
                  r.Workloads.Score.r_issues c.Workloads.Score.true_positives
                  c.Workloads.Score.false_positives
                  c.Workloads.Score.false_negatives
                  (Workloads.Score.accuracy c)
                  rf.Workloads.Score.confirmed_issues
                  rf.Workloads.Score.plausible_issues
                  rf.Workloads.Score.confirmed_fp
                  r.Workloads.Score.r_seconds
              | _ when contexts ->
                let mism, unsan, expected =
                  match r.Workloads.Score.r_sanitization with
                  | Some s ->
                    missed :=
                      !missed
                      + (s.Workloads.Score.sz_expected
                         - s.Workloads.Score.sz_matched);
                    ( string_of_int s.Workloads.Score.sz_mismatched,
                      string_of_int s.Workloads.Score.sz_unsanitized,
                      Printf.sprintf "%d/%d" s.Workloads.Score.sz_matched
                        s.Workloads.Score.sz_expected )
                  | None -> ("-", "-", "-")
                in
                Printf.printf "%-20s %7d %5d %5d %5d %9.2f %6s %7s %8s %7.2fs\n"
                  (Config.algorithm_name r.Workloads.Score.r_algorithm)
                  r.Workloads.Score.r_issues c.Workloads.Score.true_positives
                  c.Workloads.Score.false_positives
                  c.Workloads.Score.false_negatives
                  (Workloads.Score.accuracy c) mism unsan expected
                  r.Workloads.Score.r_seconds
              | _ ->
                Printf.printf "%-20s %7d %5d %5d %5d %9.2f %7.2fs\n"
                  (Config.algorithm_name r.Workloads.Score.r_algorithm)
                  r.Workloads.Score.r_issues c.Workloads.Score.true_positives
                  c.Workloads.Score.false_positives
                  c.Workloads.Score.false_negatives
                  (Workloads.Score.accuracy c) r.Workloads.Score.r_seconds))
        runs;
      (* the acceptance gate: every planted mismatched-sanitizer pattern
         must be reported with its expected (applied, required) pair *)
      if contexts && !missed > 0 then begin
        Printf.eprintf "%d planted sanitizer mismatch(es) missed\n" !missed;
        exit 1
      end
  in
  let doc =
    "Generate a benchmark app, run all five configurations (or, with \
     --rung, every degradation-ladder rung) and score them against the \
     ground truth."
  in
  Cmd.v (Cmd.info "score" ~doc)
    Term.(const run $ app_name $ algorithm $ rung_flag $ rung_csv
          $ score_no_filter $ scale $ jobs $ refine_flag $ refine_k
          $ refine_steps $ contexts_flag $ trace_file $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

(* --arm SPEC: site@after@action[@every], action = fail | transient |
   stall:SECONDS. Lets the CI smoke test (and local chaos experiments)
   arm Core.Fault sites from outside the process. *)
let arm_conv =
  let parse s =
    match String.split_on_char '@' s with
    | site :: after :: action :: rest ->
      let once =
        match rest with
        | [] | [ "once" ] -> Ok true
        | [ "every" ] -> Ok false
        | _ -> Error (`Msg ("bad arm repeat in " ^ s))
      in
      let act =
        match String.split_on_char ':' action with
        | [ "fail" ] -> Ok Fault.Fail
        | [ "transient" ] -> Ok Fault.Fail_transient
        | [ "stall"; secs ] ->
          (match float_of_string_opt secs with
           | Some f -> Ok (Fault.Stall f)
           | None -> Error (`Msg ("bad stall duration in " ^ s)))
        | _ -> Error (`Msg ("bad arm action in " ^ s))
      in
      (match int_of_string_opt after, act, once with
       | Some n, Ok action, Ok once -> Ok (site, n, action, once)
       | None, _, _ -> Error (`Msg ("bad arm tick count in " ^ s))
       | _, (Error _ as e), _ | _, _, (Error _ as e) -> e)
    | _ ->
      Error
        (`Msg
           "expected SITE@AFTER@ACTION[@once|every], e.g. \
            job:crash-1@1@fail or serve-worker@5@stall:0.1@every")
  in
  let print ppf (site, n, _, _) = Fmt.pf ppf "%s@%d" site n in
  Arg.conv (parse, print)

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:
               "Listen on a Unix domain socket at $(docv) instead of \
                serving stdin/stdout.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains executing jobs concurrently.")
  in
  let job_jobs =
    Arg.(value & opt int 1
         & info [ "job-jobs" ] ~docv:"N"
             ~doc:"Parallel worker-pool size inside each job's analysis.")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:
               "Admission queue bound. At capacity a new job sheds the \
                oldest strictly-lower-priority queued job, or is rejected \
                with reason queue_full.")
  in
  let max_retries =
    Arg.(value & opt int 2
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "Re-executions granted to a job that fails transiently. \
                Permanent failures never retry.")
  in
  let retry_base =
    Arg.(value & opt float 0.05
         & info [ "retry-base" ] ~docv:"SECONDS"
             ~doc:
               "First retry backoff; doubles per attempt with \
                deterministic seeded jitter.")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:
               "Jitter seed. A fixed seed makes the whole retry schedule \
                reproducible.")
  in
  let breaker_threshold =
    Arg.(value & opt int 5
         & info [ "breaker-threshold" ] ~docv:"N"
             ~doc:
               "Consecutive terminal failures per application that open \
                its circuit breaker.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 30.0
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:
               "Open-breaker cooldown before one half-open probe is \
                admitted.")
  in
  let mem_soft_mb =
    Arg.(value & opt (some int) None
         & info [ "mem-soft-mb" ] ~docv:"MB"
             ~doc:
               "Soft major-heap limit for the memory watchdog; above it \
                new jobs run progressively further down their degradation \
                ladder.")
  in
  let drain_grace =
    Arg.(value & opt (some float) (Some 30.0)
         & info [ "drain-grace" ] ~docv:"SECONDS"
             ~doc:
               "Per-job deadline cap applied during drain so shutdown \
                cannot be held hostage by a pathological job.")
  in
  let arms =
    Arg.(value & opt_all arm_conv []
         & info [ "arm" ] ~docv:"SPEC"
             ~doc:
               "Arm a fault-injection site (repeatable): \
                SITE@AFTER@ACTION[@once|every] with ACTION one of fail, \
                transient, stall:SECONDS. For chaos testing only.")
  in
  let cluster =
    Arg.(value & opt int 0
         & info [ "cluster" ] ~docv:"N"
             ~doc:
               "Shard the service over $(docv) worker processes, each a \
                full single-process engine, under a supervising \
                coordinator: jobs route by consistent hash of the \
                application, a crashed worker's in-flight jobs are \
                retried on peers, and the worker is respawned with \
                exponential backoff behind a per-worker circuit breaker. \
                0 (the default) serves single-process.")
  in
  let crash_retries =
    Arg.(value & opt int 2
         & info [ "crash-retries" ] ~docv:"N"
             ~doc:
               "Worker crashes a single job may survive before it is \
                answered failed:worker_crashed (cluster mode).")
  in
  let respawn_base =
    Arg.(value & opt float 0.2
         & info [ "respawn-base" ] ~docv:"SECONDS"
             ~doc:
               "First respawn backoff for a crashed worker; doubles per \
                consecutive crash (cluster mode).")
  in
  let respawn_max =
    Arg.(value & opt float 5.0
         & info [ "respawn-max" ] ~docv:"SECONDS"
             ~doc:"Respawn backoff cap (cluster mode).")
  in
  let ring_replicas =
    Arg.(value & opt int 32
         & info [ "ring-replicas" ] ~docv:"N"
             ~doc:
               "Virtual nodes per worker on the consistent-hash routing \
                ring (cluster mode).")
  in
  let worker_breaker_threshold =
    Arg.(value & opt int 3
         & info [ "worker-breaker-threshold" ] ~docv:"N"
             ~doc:
               "Consecutive crashes that open a worker's circuit breaker \
                and take it out of the routing ring (cluster mode).")
  in
  let worker_breaker_cooldown =
    Arg.(value & opt float 5.0
         & info [ "worker-breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:
               "Open worker-breaker cooldown before one probe job is \
                routed to it again (cluster mode).")
  in
  let admin_socket =
    Arg.(value & opt (some string) None
         & info [ "admin-socket" ] ~docv:"PATH"
             ~doc:
               "Serve the admin channel on a second Unix domain socket \
                at $(docv): one command line in (health, metrics, \
                metrics.json, dump), one reply out. In cluster mode \
                replies aggregate the coordinator and every live worker. \
                taj top renders from this endpoint.")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:
               "Append the structured NDJSON event log to $(docv). In \
                cluster mode worker lines are forwarded over the \
                supervised pipe so $(docv) carries one merged stream.")
  in
  let flight_recorder =
    Arg.(value & opt int 256
         & info [ "flight-recorder" ] ~docv:"N"
             ~doc:
               "Always-on flight recorder: keep the last $(docv) \
                telemetry events per domain in a bounded ring, dumped as \
                a Chrome trace on worker crash, SIGUSR1 or an admin dump \
                command — no --trace needed. 0 disables.")
  in
  let flight_dump_file =
    Arg.(value & opt string "taj-flight.json"
         & info [ "flight-dump" ] ~docv:"FILE"
             ~doc:"Where the flight-recorder dump is written.")
  in
  let run socket workers job_jobs queue_cap max_retries retry_base seed
      breaker_threshold breaker_cooldown mem_soft_mb drain_grace arms
      cluster crash_retries respawn_base respawn_max ring_replicas
      worker_breaker_threshold worker_breaker_cooldown admin_socket
      log_file flight_recorder flight_dump_file trace metrics
      cache_dir no_cache =
    telemetry_setup ~trace ~metrics;
    (* armed (and logging configured) before the cluster forks so
       workers inherit both *)
    if flight_recorder > 0 then Obs.Telemetry.arm_flight flight_recorder;
    let flight_dump =
      if flight_recorder > 0 then Some flight_dump_file else None
    in
    (match log_file with
     | Some path ->
       Obs.Log.open_file path;
       Obs.Log.set_context
         [ ("proc", if cluster > 0 then "coordinator" else "serve") ]
     | None -> ());
    List.iter
      (fun (site, after, action, once) ->
         Fault.arm ~once ~action site ~after)
      arms;
    let config =
      { Serve.Service.default_config with
        workers; job_jobs; queue_cap; max_retries; retry_base; seed;
        breaker_threshold; breaker_cooldown;
        mem_soft_limit_mb = mem_soft_mb; drain_grace;
        cache_dir = (if no_cache then None else cache_dir) }
    in
    if cluster > 0 then begin
      (* telemetry is enabled (or not) before the fork so workers
         inherit the flag; each writes its own trace file at drain and
         the coordinator merges them *)
      let ccfg =
        { Serve.Cluster.default_config with
          size = cluster; ring_replicas; crash_retries;
          respawn_base; respawn_max;
          worker_breaker_threshold; worker_breaker_cooldown;
          worker_trace_prefix = trace; flight_dump;
          forward_logs = log_file <> None; service = config }
      in
      let c = Serve.Cluster.create ~config:ccfg () in
      let h =
        match socket with
        | Some path ->
          (try Serve.Cluster.run_socket ?admin:admin_socket c path
           with Unix.Unix_error (e, fn, arg) ->
             Printf.eprintf "error: cannot serve on %s: %s (%s %s)\n" path
               (Unix.error_message e) fn arg;
             exit 1)
        | None -> Serve.Cluster.run_stdio ?admin:admin_socket c
      in
      (match trace with
       | Some path ->
         Serve.Cluster.write_merged_trace c path;
         Printf.eprintf "merged trace written to %s\n" path
       | None -> ());
      if metrics then Fmt.epr "%a@." Obs.Telemetry.pp_metrics ();
      Printf.eprintf
        "drained: cluster %d: %d completed, %d degraded, %d failed, %d \
         rejected, %d shed; %d worker crash(es), %d respawn(s), %d \
         rerouted, %d crash-failed\n"
        h.Serve.Cluster.ch_size h.Serve.Cluster.ch_completed
        h.Serve.Cluster.ch_degraded h.Serve.Cluster.ch_failed
        h.Serve.Cluster.ch_rejected h.Serve.Cluster.ch_shed
        h.Serve.Cluster.ch_crashes h.Serve.Cluster.ch_respawns
        h.Serve.Cluster.ch_rerouted h.Serve.Cluster.ch_crash_failed;
      if Serve.Cluster.clean_drain h then exit 0 else exit 5
    end;
    let service =
      Serve.Service.create
        ~config:{ config with Serve.Service.flight_dump } ()
    in
    let h =
      match socket with
      | Some path ->
        (try Serve.Service.run_socket ?admin:admin_socket service path
         with Unix.Unix_error (e, fn, arg) ->
           Printf.eprintf "error: cannot serve on %s: %s (%s %s)\n" path
             (Unix.error_message e) fn arg;
           exit 1)
      | None -> Serve.Service.run_stdio ?admin:admin_socket service
    in
    telemetry_export ~trace ~metrics;
    Printf.eprintf
      "drained: %d completed, %d degraded, %d failed, %d rejected, %d \
       shed, %d retries\n"
      h.Serve.Service.h_completed h.Serve.Service.h_degraded
      h.Serve.Service.h_failed
      (h.Serve.Service.h_rejected_full
       + h.Serve.Service.h_rejected_draining)
      h.Serve.Service.h_shed h.Serve.Service.h_retries;
    if Serve.Service.clean_drain h then exit 0 else exit 5
  in
  let doc =
    "Run a long-lived analysis service over stdio or a Unix socket."
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Accepts newline-delimited JSON job requests and answers each \
         with exactly one terminal JSON response. A request names a \
         benchmark application ($(b,app)) or carries inline MJava source \
         ($(b,source)), plus optional $(b,id), $(b,algorithm), \
         $(b,scale), $(b,deadline), $(b,priority) and $(b,descriptor) \
         fields. Responses carry $(b,id), $(b,status) (completed, \
         degraded, rejected or failed), $(b,reason), $(b,issues), \
         $(b,attempts), $(b,degradations) and $(b,seconds).";
      `P
        "On SIGINT, SIGTERM or end of input the service drains: it stops \
         admitting, finishes every admitted job, and writes a final \
         health snapshot line ($(b,event)=health).";
      `P
        "With $(b,--cluster) N the same protocol is served by a \
         coordinator supervising N forked worker processes. Jobs route \
         by consistent hash of the application so repeated submissions \
         hit a warm worker; a worker killed mid-job (segfault, OOM, \
         kill -9) has its in-flight jobs retried on peers up to \
         $(b,--crash-retries) times (then answered \
         failed:worker_crashed) and is respawned with exponential \
         backoff behind a per-worker circuit breaker. The final health \
         line aggregates per-worker counters.";
      `P
        "With $(b,--admin-socket) a second Unix socket answers one-line \
         admin commands — $(b,health) (JSON), $(b,metrics) (Prometheus \
         text exposition ending in # EOF), $(b,metrics.json), $(b,dump) \
         — without touching the job stream; in cluster mode the answers \
         aggregate every live worker. $(b,taj top) renders a live \
         dashboard from this endpoint. SIGUSR1, a worker crash, or the \
         $(b,dump) command writes the always-on flight recorder \
         ($(b,--flight-recorder)) as a Chrome trace at \
         $(b,--flight-dump).";
      `S Manpage.s_exit_status;
      `P "0 on a clean drain: every admitted job ran to a terminal state \
          and none was shed or turned away by a full queue.";
      `P "1 if the service could not start (e.g. the socket path cannot \
          be bound).";
      `P
        "5 on a drain after load shedding: all jobs still reached \
         terminal states, but at least one was shed or rejected with \
         queue_full, so callers should treat the run as overloaded.";
      `P
        "The $(b,analyze) command's exit codes (0 clean, 1 load failure, \
         2 issues found, 3 did not complete, 4 partial result) apply per \
         job inside the service and are reported in each response's \
         $(b,status) instead of the process exit code." ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run $ socket $ workers $ job_jobs $ queue_cap $ max_retries
          $ retry_base $ seed $ breaker_threshold $ breaker_cooldown
          $ mem_soft_mb $ drain_grace $ arms $ cluster $ crash_retries
          $ respawn_base $ respawn_max $ ring_replicas
          $ worker_breaker_threshold $ worker_breaker_cooldown
          $ admin_socket $ log_file $ flight_recorder $ flight_dump_file
          $ trace_file $ metrics_flag $ cache_dir_arg $ no_cache_flag)

(* ------------------------------------------------------------------ *)
(* top                                                                *)
(* ------------------------------------------------------------------ *)

(* One admin transaction per poll: connect, send the command, half-close
   the write side, read the reply to EOF (the server answers the command
   line, then drops the half-closed peer). A fresh connection per poll
   keeps the dashboard stateless across server restarts. *)
let admin_query path cmd =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd (Unix.ADDR_UNIX path);
       let line = Bytes.of_string (cmd ^ "\n") in
       ignore (Unix.write fd line 0 (Bytes.length line));
       Unix.shutdown fd Unix.SHUTDOWN_SEND;
       let buf = Buffer.create 4096 in
       let chunk = Bytes.create 4096 in
       let rec go () =
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> ()
         | n ->
           Buffer.add_subbytes buf chunk 0 n;
           go ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
       in
       go ();
       Buffer.contents buf)

let top_cmd =
  let admin_path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ADMIN_SOCKET"
             ~doc:"Path of the serve --admin-socket endpoint to poll.")
  in
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Refresh interval between polls.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:
               "Render a single frame without clearing the screen and \
                exit; for scripts and CI.")
  in
  let module J = Serve.Json in
  let jint k j = Option.value ~default:0 (J.int_member k j) in
  let jnum k j = Option.value ~default:0.0 (J.num_member k j) in
  (* previous (time, completed) sample, for the throughput estimate *)
  let prev = ref None in
  let render ~metrics h =
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    let completed = jint "completed" h in
    let tnow = Unix.gettimeofday () in
    let rate =
      match !prev with
      | Some (t0, c0) when tnow > t0 ->
        float_of_int (completed - c0) /. (tnow -. t0)
      | _ -> 0.0
    in
    prev := Some (tnow, completed);
    (match J.int_member "cluster" h with
     | Some n -> line "taj top — cluster of %d — uptime %.1fs" n (jnum "uptime" h)
     | None -> line "taj top — uptime %.1fs" (jnum "uptime" h));
    line "jobs      submitted %d  completed %d  degraded %d  failed %d  \
          rejected %d  shed %d  (%.1f jobs/s)"
      (jint "submitted" h) completed (jint "degraded" h) (jint "failed" h)
      (jint "rejected" h + jint "rejected_full" h
       + jint "rejected_draining" h)
      (jint "shed" h) rate;
    (* single-process health carries these inline; the cluster aggregate
       gets them from the merged metrics snapshot below *)
    (match J.member "latency_ms_p50" h with
     | Some _ ->
       line "latency   p50 %dms  p95 %dms  p99 %dms"
         (jint "latency_ms_p50" h) (jint "latency_ms_p95" h)
         (jint "latency_ms_p99" h);
       line "state     queue %d  pressure %d  rung %s  breakers open %d  \
             cache %d/%d hit/miss (%d invalidated)"
         (jint "queue_depth" h) (jint "pressure" h)
         (match J.str_member "rung" h with
          | Some r when r <> "" -> r
          | _ -> "-")
         (match J.member "open_breakers" h with
          | Some (J.Arr l) -> List.length l
          | _ -> 0)
         (jint "cache_hits" h) (jint "cache_misses" h)
         (jint "cache_invalidated" h)
     | None -> ());
    (match metrics with
     | None -> ()
     | Some m ->
       (match J.member "serve.latency_ms" m with
        | Some lat ->
          line "latency   p50 %dms  p95 %dms  p99 %dms  (n=%d, cluster-wide)"
            (jint "p50" lat) (jint "p95" lat) (jint "p99" lat)
            (jint "count" lat)
        | None -> ());
       let counter k = J.int_member k m in
       (match counter "cache.hit", counter "cache.miss" with
        | None, None -> ()
        | hit, miss ->
          line "cache     %d hit  %d miss  %d invalidated"
            (Option.value ~default:0 hit) (Option.value ~default:0 miss)
            (Option.value ~default:0
               (counter "cache.invalidated")));
       (* per-rung response counters: one "serve.rung.<algorithm>"
          counter per ladder rung a job actually ran on *)
       (match m with
        | J.Obj kvs ->
          let prefix = "serve.rung." in
          let plen = String.length prefix in
          let rungs =
            List.filter_map
              (fun (k, _) ->
                 if String.length k > plen && String.sub k 0 plen = prefix
                 then
                   Option.map
                     (fun n ->
                        (String.sub k plen (String.length k - plen), n))
                     (counter k)
                 else None)
              kvs
          in
          if rungs <> [] then
            line "rungs     %s"
              (String.concat "  "
                 (List.map
                    (fun (k, n) -> Printf.sprintf "%s %d" k n)
                    rungs))
        | _ -> ()));
    (match J.member "workers" h with
     | Some (J.Arr ws) ->
       line "workers   %d/%d up  (%d crash(es), %d respawn(s), %d \
             rerouted, %d crash-failed)"
         (List.length
            (List.filter
               (fun w -> J.member "up" w = Some (J.Bool true))
               ws))
         (List.length ws)
         (jint "worker_crashes" h) (jint "worker_respawns" h)
         (jint "jobs_rerouted" h) (jint "jobs_crash_failed" h);
       List.iter
         (fun w ->
            let up =
              if J.member "up" w = Some (J.Bool true) then "up  " else "DOWN"
            in
            match J.member "health" w with
            | Some wh ->
              line "  worker %d  %s pid %-7d spawns %d  queue %d  \
                    completed %d  p99 %dms  rung %s"
                (jint "worker" w) up (jint "pid" w) (jint "spawns" w)
                (jint "queue_depth" wh) (jint "completed" wh)
                (jint "latency_p99" wh)
                (match J.str_member "rung" wh with
                 | Some r when r <> "" -> r
                 | _ -> string_of_int (jint "pressure" wh))
            | None ->
              line "  worker %d  %s pid %-7d spawns %d"
                (jint "worker" w) up (jint "pid" w) (jint "spawns" w))
         ws
     | _ -> ());
    Buffer.contents b
  in
  let frame path =
    match admin_query path "health" with
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "taj top: %s: %s\n" path (Unix.error_message e);
      false
    | reply ->
      let metrics =
        match admin_query path "metrics.json" with
        | m -> Result.to_option (J.parse (String.trim m))
        | exception Unix.Unix_error _ -> None
      in
      (match J.parse (String.trim reply) with
       | Error e ->
         Printf.eprintf "taj top: bad health reply: %s\n" e;
         false
       | Ok h ->
         print_string (render ~metrics h);
         true)
  in
  let run path interval once =
    if once then begin if not (frame path) then exit 1 end
    else begin
      let stop = ref false in
      Sys.set_signal Sys.sigint
        (Sys.Signal_handle (fun _ -> stop := true));
      while not !stop do
        (* repaint in place: clear screen, home cursor *)
        print_string "\027[2J\027[H";
        ignore (frame path);
        flush stdout;
        Unix.sleepf interval
      done
    end
  in
  let doc = "Live terminal dashboard over a serve --admin-socket." in
  let man =
    [ `S Manpage.s_description;
      `P
        "Polls the admin endpoint of a running $(b,taj serve) \
         ($(b,--admin-socket)) and renders throughput, latency \
         percentiles, queue depth, degradation rung, breaker and cache \
         state, and — in cluster mode — per-worker liveness. One \
         connection per poll; the dashboard survives server restarts." ]
  in
  Cmd.v (Cmd.info "top" ~doc ~man)
    Term.(const run $ admin_path $ interval $ once)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "TAJ: taint analysis for (M)Java web applications" in
  let info = Cmd.info "taj" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; explain_cmd; graph_cmd; jsp_cmd; dump_ir_cmd;
            generate_cmd; apps_cmd; score_cmd; serve_cmd; top_cmd ]))
