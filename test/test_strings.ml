(* End-to-end tests for the context-sensitive sanitization analysis:
   record-and-judge verdicts, the overriding-subclass regression across
   tabulation / refinement / triage, and the contexts-off metamorphic
   identity the feature flag promises. *)

open Core

let load srcs =
  Taj.load { Taj.name = "strings-test"; app_sources = srcs; descriptor = "" }

let analyze ?(contexts = false) ?(refine = false) ?(jobs = 1) srcs =
  let config =
    { (Config.preset Config.Hybrid_unbounded) with Config.contexts; refine }
  in
  Taj.run ~jobs (load srcs) config

let completed a =
  match a.Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete reason -> Alcotest.failf "did not complete: %s" reason

let issues_of ?contexts ?refine ?jobs srcs =
  (completed (analyze ?contexts ?refine ?jobs srcs)).Taj.report.Report.issues

let count_issues issue reports =
  List.length (List.filter (fun ir -> ir.Report.ir_issue = issue) reports)

(* ------------------------------------------------------------------ *)
(* Record-and-judge verdicts                                           *)
(* ------------------------------------------------------------------ *)

(* An HTML-entity encoder guarding a quoted SQL position: useless against
   SQLi, so the judge must flag the applied/required mismatch. *)
let html_encoder_on_sql =
  {|class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String name = Sanitizer.encodeHtml(req.getParameter("name"));
        String q = "SELECT v FROM users WHERE name='" + name + "'";
        Connection c = DriverManager.getConnection("jdbc:app");
        Statement st = c.createStatement();
        st.executeQuery(q);
      }
    }|}

let test_mismatched_verdict () =
  let issues = issues_of ~contexts:true [ html_encoder_on_sql ] in
  Alcotest.(check int) "sqli reported despite sanitizer" 1
    (count_issues Rules.Sqli issues);
  let ir = List.find (fun ir -> ir.Report.ir_issue = Rules.Sqli) issues in
  match ir.Report.ir_sanitization with
  | Some (Strings.Context.Mismatched_sanitizer { applied; required }) ->
    Alcotest.(check bool) "encodeHtml is the applied sanitizer" true
      (List.mem "Sanitizer.encodeHtml/1" applied);
    Alcotest.(check string) "required context is sql-quoted" "sql-quoted"
      (Strings.Context.name required)
  | other ->
    Alcotest.failf "expected a mismatched-sanitizer verdict, got %s"
      (match other with
       | None -> "no verdict"
       | Some v -> Strings.Context.verdict_name v)

let test_contexts_off_no_verdict () =
  let issues = issues_of ~contexts:false [ html_encoder_on_sql ] in
  Alcotest.(check int) "same issue reported with contexts off" 1
    (count_issues Rules.Sqli issues);
  List.iter
    (fun ir ->
       Alcotest.(check bool) "no sanitization verdict attached" true
         (ir.Report.ir_sanitization = None))
    issues

(* The right sanitizer in the right context: the judge must drop the
   flow exactly like the classic kill does. *)
let matched_sanitizer =
  {|class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String name = Sanitizer.escapeSql(req.getParameter("name"));
        String q = "SELECT v FROM users WHERE name='" + name + "'";
        Connection c = DriverManager.getConnection("jdbc:app");
        Statement st = c.createStatement();
        st.executeQuery(q);
      }
    }|}

let test_matched_sanitizer_dropped () =
  Alcotest.(check int) "judge drops the sanitized flow" 0
    (count_issues Rules.Sqli (issues_of ~contexts:true [ matched_sanitizer ]));
  Alcotest.(check int) "classic kill agrees" 0
    (count_issues Rules.Sqli (issues_of ~contexts:false [ matched_sanitizer ]))

let test_unsanitized_verdict () =
  let issues =
    issues_of ~contexts:true
      [ {|class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(req.getParameter("name"));
            }
          }|} ]
  in
  Alcotest.(check int) "one xss" 1 (count_issues Rules.Xss issues);
  let ir = List.find (fun ir -> ir.Report.ir_issue = Rules.Xss) issues in
  Alcotest.(check bool) "verdict is unsanitized" true
    (ir.Report.ir_sanitization = Some Strings.Context.Unsanitized)

(* ------------------------------------------------------------------ *)
(* Overriding-subclass regression (satellite of the matcher unification) *)
(* ------------------------------------------------------------------ *)

let override_app =
  [ {|class OverrideSan extends Sanitizer {
        public static String encodeHtml(String s) { return s; }
      }|};
    {|class Page extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          String name = OverrideSan.encodeHtml(req.getParameter("name"));
          resp.getWriter().println(name);
        }
      }|} ]

let inherit_app =
  [ "class InheritSan extends Sanitizer { }";
    {|class Page extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          String name = InheritSan.encodeHtml(req.getParameter("name"));
          resp.getWriter().println(name);
        }
      }|} ]

let test_override_tabulation () =
  Alcotest.(check int) "override is not a sanitizer" 1
    (count_issues Rules.Xss (issues_of override_app));
  Alcotest.(check int) "inherited sanitizer still kills" 0
    (count_issues Rules.Xss (issues_of inherit_app))

let test_override_refine () =
  Alcotest.(check int) "refinement keeps the override flow" 1
    (count_issues Rules.Xss (issues_of ~refine:true override_app));
  Alcotest.(check int) "refinement keeps the inherited kill" 0
    (count_issues Rules.Xss (issues_of ~refine:true inherit_app))

let test_override_judge () =
  (* With contexts on the override flow must survive the judge as plain
     Unsanitized: OverrideSan.encodeHtml resolves to the subclass's own
     body, so it is not an applied sanitizer. *)
  let issues = issues_of ~contexts:true override_app in
  Alcotest.(check int) "judge keeps the override flow" 1
    (count_issues Rules.Xss issues);
  let ir = List.find (fun ir -> ir.Report.ir_issue = Rules.Xss) issues in
  Alcotest.(check bool) "override is not recorded as applied" true
    (ir.Report.ir_sanitization = Some Strings.Context.Unsanitized);
  Alcotest.(check int) "judge keeps the inherited kill" 0
    (count_issues Rules.Xss (issues_of ~contexts:true inherit_app))

let test_override_triage () =
  (* The type-qualifier triage consults the same canonical matcher: the
     overridden sanitizer must not endorse, so the flow stays a finding. *)
  let verdict =
    Taj.triage ~rules:Rules.default_rules (load override_app)
  in
  let findings = Triage.findings verdict in
  Alcotest.(check bool) "triage keeps a finding in Page" true
    (List.exists
       (fun (f : Triage.finding) -> String.equal f.Triage.f_class "Page")
       findings)

(* ------------------------------------------------------------------ *)
(* Contexts-off metamorphic identity                                   *)
(* ------------------------------------------------------------------ *)

let multi_app =
  [ html_encoder_on_sql;
    {|class Other extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          resp.getWriter().println(req.getParameter("q"));
        }
      }|} ]

let rendered ?contexts ?jobs srcs =
  let c = completed (analyze ?contexts ?jobs srcs) in
  Fmt.str "%a" (Report.pp c.Taj.builder) c.Taj.report

let test_contexts_off_jobs_identity () =
  Alcotest.(check string) "contexts-off report identical at jobs=1/jobs=4"
    (rendered ~contexts:false ~jobs:1 multi_app)
    (rendered ~contexts:false ~jobs:4 multi_app)

let test_contexts_on_loses_no_issue () =
  let off = issues_of ~contexts:false multi_app in
  let on = issues_of ~contexts:true multi_app in
  Alcotest.(check int) "same xss count" (count_issues Rules.Xss off)
    (count_issues Rules.Xss on);
  Alcotest.(check int) "same sqli count" (count_issues Rules.Sqli off)
    (count_issues Rules.Sqli on)

let suite =
  [ Alcotest.test_case "mismatched verdict" `Quick test_mismatched_verdict;
    Alcotest.test_case "contexts off: no verdict" `Quick
      test_contexts_off_no_verdict;
    Alcotest.test_case "matched sanitizer dropped" `Quick
      test_matched_sanitizer_dropped;
    Alcotest.test_case "unsanitized verdict" `Quick test_unsanitized_verdict;
    Alcotest.test_case "override: tabulation" `Quick test_override_tabulation;
    Alcotest.test_case "override: refinement" `Quick test_override_refine;
    Alcotest.test_case "override: judge" `Quick test_override_judge;
    Alcotest.test_case "override: triage" `Quick test_override_triage;
    Alcotest.test_case "contexts off: jobs identity" `Quick
      test_contexts_off_jobs_identity;
    Alcotest.test_case "contexts on loses no issue" `Quick
      test_contexts_on_loses_no_issue ]
