(* Rule-matching unit tests: canonicalization through the hierarchy, sink
   argument positions, per-rule sanitizers, priority seeding. *)

open Core
open Jir

let table_of srcs =
  let prog = Program.create () in
  List.iter
    (Lower.declare prog ~library:true)
    (Models.Jdklib.units ());
  List.iter (fun s -> Lower.declare prog ~library:false (Parser.parse s)) srcs;
  prog.Program.table

let mref cls name arity = { Tac.rclass = cls; rname = name; rarity = arity }

let test_canonicalization_through_subclass () =
  let table =
    table_of [ "class MyRequest extends HttpServletRequest { }" ]
  in
  let m = Rules.matcher table in
  Alcotest.(check string) "subclass target resolves to declaring class"
    "HttpServletRequest.getParameter/2"
    (Rules.canonical m (mref "MyRequest" "getParameter" 2));
  Alcotest.(check string) "unknown class stays as written" "Ghost.spook/1"
    (Rules.canonical m (mref "Ghost" "spook" 1))

let test_source_matching () =
  let table = table_of [] in
  let m = Rules.matcher table in
  Alcotest.(check bool) "getParameter is an xss source" true
    (Rules.source_of m Rules.xss (mref "HttpServletRequest" "getParameter" 2)
     <> None);
  Alcotest.(check bool) "getMessage is not an xss source" true
    (Rules.source_of m Rules.xss (mref "Throwable" "getMessage" 1) = None);
  Alcotest.(check bool) "getMessage is an info-leak source" true
    (Rules.source_of m Rules.info_leak (mref "Throwable" "getMessage" 1)
     <> None)

let test_sink_positions () =
  let table = table_of [] in
  let m = Rules.matcher table in
  Alcotest.(check bool) "println arg 1 is sensitive" true
    (Rules.is_sink_arg m Rules.xss (mref "PrintWriter" "println" 2) 1);
  Alcotest.(check bool) "println receiver is not" false
    (Rules.is_sink_arg m Rules.xss (mref "PrintWriter" "println" 2) 0);
  Alcotest.(check bool) "addHeader value is sensitive" true
    (Rules.is_sink_arg m Rules.xss (mref "HttpServletResponse" "addHeader" 3) 2);
  Alcotest.(check bool) "addHeader name is not" false
    (Rules.is_sink_arg m Rules.xss (mref "HttpServletResponse" "addHeader" 3) 1)

let test_sanitizers_per_rule () =
  let table = table_of [] in
  let m = Rules.matcher table in
  let encode = mref "URLEncoder" "encode" 1 in
  Alcotest.(check bool) "encode sanitizes xss" true
    (Rules.is_sanitizer m Rules.xss encode);
  Alcotest.(check bool) "encode does not sanitize sqli" false
    (Rules.is_sanitizer m Rules.sqli encode);
  let escape = mref "Sanitizer" "escapeSql" 1 in
  Alcotest.(check bool) "escapeSql sanitizes sqli" true
    (Rules.is_sanitizer m Rules.sqli escape);
  Alcotest.(check bool) "escapeSql does not sanitize xss" false
    (Rules.is_sanitizer m Rules.xss escape)

(* Regression: tabulation, refinement and triage all resolve sanitizer
   calls through [canonical], so a subclass that merely *inherits* a
   sanitizer matches, while one that *overrides* it with its own body
   does not — the override may not sanitize at all. *)
let test_overriding_subclass_sanitizer () =
  let table =
    table_of
      [ "class InheritSan extends Sanitizer { }";
        "class OverrideSan extends Sanitizer { public static String \
         encodeHtml(String s) { return s; } }" ]
  in
  let m = Rules.matcher table in
  Alcotest.(check (option string)) "inheriting subclass matches"
    (Some "Sanitizer.encodeHtml/1")
    (Rules.sanitizer_of m Rules.default_rules (mref "InheritSan" "encodeHtml" 1));
  Alcotest.(check (option string)) "overriding subclass does not match" None
    (Rules.sanitizer_of m Rules.default_rules
       (mref "OverrideSan" "encodeHtml" 1));
  Alcotest.(check bool) "xss rule agrees for the inheriting subclass" true
    (Rules.is_sanitizer m Rules.xss (mref "InheritSan" "encodeHtml" 1));
  Alcotest.(check bool) "xss rule agrees for the overriding subclass" false
    (Rules.is_sanitizer m Rules.xss (mref "OverrideSan" "encodeHtml" 1))

let test_priority_seed_predicate () =
  let table =
    table_of [ "class MyRequest extends HttpServletRequest { }" ]
  in
  let m = Rules.matcher table in
  let is_source = Rules.is_source_method_id Rules.default_rules m in
  Alcotest.(check bool) "direct id" true
    (is_source "HttpServletRequest.getParameter/2");
  Alcotest.(check bool) "subclass id" true
    (is_source "MyRequest.getParameter/2");
  Alcotest.(check bool) "sink is not a source" false
    (is_source "PrintWriter.println/2");
  Alcotest.(check bool) "garbage id" false (is_source "not-a-method-id")

let suite =
  [ Alcotest.test_case "canonicalization" `Quick
      test_canonicalization_through_subclass;
    Alcotest.test_case "source matching" `Quick test_source_matching;
    Alcotest.test_case "sink positions" `Quick test_sink_positions;
    Alcotest.test_case "sanitizers per rule" `Quick test_sanitizers_per_rule;
    Alcotest.test_case "overriding subclass sanitizer" `Quick
      test_overriding_subclass_sanitizer;
    Alcotest.test_case "priority seed predicate" `Quick
      test_priority_seed_predicate ]
