(* Workload-generator tests: determinism, spec derivation, ground-truth
   attribution, and property tests over entire generated applications. *)

open Workloads

let test_rng_determinism () =
  let a = Rng.of_string "seed" and b = Rng.of_string "seed" in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Rng.of_string "other" in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.create 42 in
  for _ = 1 to 500 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_generation_deterministic () =
  let a = Option.get (Apps.find "Friki") in
  let g1 = Apps.generate ~scale:0.05 a in
  let g2 = Apps.generate ~scale:0.05 a in
  Alcotest.(check (list string)) "identical sources"
    g1.Codegen.g_sources g2.Codegen.g_sources;
  Alcotest.(check string) "identical descriptor"
    g1.Codegen.g_descriptor g2.Codegen.g_descriptor;
  Alcotest.(check int) "identical truth size"
    (List.length g1.Codegen.g_truth) (List.length g2.Codegen.g_truth)

let test_all_apps_have_specs () =
  Alcotest.(check int) "22 applications" 22 (List.length Apps.table2);
  Alcotest.(check int) "9 scored" 9 (List.length Apps.scored_apps);
  List.iter
    (fun (a : Apps.app) ->
       let spec = Apps.spec_of ~scale:0.02 a in
       Alcotest.(check bool)
         (a.Apps.name ^ " has patterns") true
         (spec.Codegen.sp_patterns <> []);
       Alcotest.(check bool)
         (a.Apps.name ^ " has cold mass") true
         (spec.Codegen.sp_cold_classes >= 1))
    Apps.table2

let test_traits_applied () =
  let blueblog = Option.get (Apps.find "BlueBlog") in
  let spec = Apps.spec_of ~scale:0.05 blueblog in
  Alcotest.(check bool) "BlueBlog has thread patterns" true
    (List.mem_assoc "thread" spec.Codegen.sp_patterns);
  Alcotest.(check bool) "BlueBlog has a long real flow" true
    (List.mem_assoc "long-real" spec.Codegen.sp_patterns)

let test_attribution () =
  let truth =
    [ { Ground_truth.p_id = 0; p_kind = "direct"; p_class = "C1";
        p_sink_method = "emitR"; p_issue = Core.Rules.Xss; p_real = true;
        p_expect = None };
      { Ground_truth.p_id = 1; p_kind = "dict"; p_class = "C2";
        p_sink_method = "emitF"; p_issue = Core.Rules.Xss; p_real = false;
        p_expect = None } ]
  in
  (match Ground_truth.attribute truth ~cls:"C1" ~meth:"emitR" with
   | Some p -> Alcotest.(check bool) "real" true p.Ground_truth.p_real
   | None -> Alcotest.fail "attribution failed");
  Alcotest.(check bool) "no match" true
    (Ground_truth.attribute truth ~cls:"C1" ~meth:"emitF" = None);
  Alcotest.(check int) "real count" 1 (Ground_truth.real_count truth);
  Alcotest.(check int) "fake count" 1 (Ground_truth.fake_count truth)

let test_every_pattern_kind_generates () =
  let kinds =
    List.map (fun (k, _, _) -> k) Patterns.catalog
    @ [ "thread"; "long-real"; "deep-carrier"; "ejb" ]
  in
  List.iteri
    (fun i kind ->
       let rng = Rng.create (i + 1) in
       let out = (Patterns.find_gen kind) ~id:i ~rng in
       Alcotest.(check bool) (kind ^ " parses") true
         (match Jir.Parser.parse out.Patterns.source with
          | _ -> true
          | exception _ -> false);
       Alcotest.(check bool) (kind ^ " has ground truth") true
         (out.Patterns.planted <> []))
    kinds

(* property: every generated app loads, analyzes and scores cleanly with no
   unattributed issues, and the hybrid configuration misses no real flow *)
let prop_generated_apps_analyze =
  let arb =
    QCheck.make
      ~print:(fun (name, scale) -> Printf.sprintf "%s@%.3f" name scale)
      QCheck.Gen.(
        map2
          (fun i s ->
             ((List.nth Apps.table2 i).Apps.name,
              0.01 +. float_of_int s *. 0.002))
          (int_bound 21) (int_bound 10))
  in
  QCheck.Test.make ~name:"generated apps analyze cleanly" ~count:12 arb
    (fun (name, scale) ->
       let app = Option.get (Apps.find name) in
       let g = Apps.generate ~scale app in
       let loaded = Core.Taj.load (Codegen.to_input g) in
       let analysis =
         Core.Taj.run loaded
           (Core.Config.preset ~scale Core.Config.Hybrid_unbounded)
       in
       match analysis.Core.Taj.result with
       | Core.Taj.Did_not_complete _ -> false
       | Core.Taj.Completed c ->
         let cl = Score.classify g.Codegen.g_truth c.Core.Taj.builder
             c.Core.Taj.report
         in
         cl.Score.unattributed = 0 && cl.Score.false_negatives = 0)

let test_scoring_orders_algorithms () =
  (* on an app with both trap kinds: CI reports at least as many issues as
     hybrid, which reports at least as many as CS *)
  let app = Option.get (Apps.find "SBM") in
  let runs = Score.run_app ~scale:0.03 app in
  let issues alg =
    match List.find_opt (fun r -> r.Score.r_algorithm = alg) runs with
    | Some r when r.Score.r_completed -> Some r.Score.r_issues
    | _ -> None
  in
  match
    ( issues Core.Config.Ci_thin_slicing,
      issues Core.Config.Hybrid_unbounded )
  with
  | Some ci, Some hybrid ->
    Alcotest.(check bool) "ci >= hybrid" true (ci >= hybrid)
  | _ -> Alcotest.fail "configurations did not complete"

let suite =
  [ Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "generation deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "all apps have specs" `Quick test_all_apps_have_specs;
    Alcotest.test_case "traits applied" `Quick test_traits_applied;
    Alcotest.test_case "attribution" `Quick test_attribution;
    Alcotest.test_case "every pattern generates" `Quick
      test_every_pattern_kind_generates;
    Alcotest.test_case "scoring orders algorithms" `Quick
      test_scoring_orders_algorithms;
    QCheck_alcotest.to_alcotest prop_generated_apps_analyze ]
