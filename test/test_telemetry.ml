(* The observability layer: span balance and nesting on a real pipeline
   run, Chrome-trace JSON well-formedness, counter determinism across
   worker-pool sizes, resilience events (budget trips, injected faults,
   ladder steps) as instants on the trace, and the disabled-mode
   overhead guard. *)

open Core
module Telemetry = Obs.Telemetry

(* Every case runs with a clean slate and leaves one behind: telemetry
   off, metrics zeroed, events dropped, faults disarmed — regardless of
   how the case exits. *)
let isolated f () =
  Fault.reset ();
  Telemetry.arm_flight 0;
  Telemetry.disable ();
  Telemetry.reset ();
  Obs.Log.set_sink None;
  Obs.Log.set_context [];
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Telemetry.arm_flight 0;
      Telemetry.disable ();
      Telemetry.reset ();
      Obs.Log.set_sink None;
      Obs.Log.set_context [])
    f

let input srcs =
  { Taj.name = "telemetry"; app_sources = srcs; descriptor = "" }

(* two flows and a heap hop: ticks every fault site and exercises
   pointer, SDG, tabulation and LCP spans *)
let two_flows =
  {|class Cell { String v; }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        c.v = req.getParameter("x");
        resp.getWriter().println(c.v);
        Connection conn = DriverManager.getConnection("jdbc:db");
        Statement st = conn.createStatement();
        st.executeQuery(c.v);
      }
    }|}

(* a second unit, so the parallel frontend parse has more than one task *)
let second_unit =
  {|class Other extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        resp.getWriter().println(req.getParameter("y"));
      }
    }|}

let analyze ?(jobs = 1) () =
  Taj.analyze ~jobs (input [ two_flows; second_unit ])

(* ------------------------------------------------------------------ *)
(* Metric primitives                                                  *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge_histogram () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.counter" in
  let g = Telemetry.gauge "test.gauge" in
  let h = Telemetry.histogram "test.histogram" in
  Telemetry.incr c;
  Telemetry.add c 4;
  Telemetry.set g 17;
  List.iter (Telemetry.observe h) [ 0; 1; 3; 8; 8 ];
  Alcotest.(check (option int)) "counter sums"
    (Some 5)
    (match Telemetry.find_value "test.counter" with
     | Some (Telemetry.V_counter n) -> Some n
     | _ -> None);
  Alcotest.(check (option int)) "gauge holds the last value"
    (Some 17)
    (match Telemetry.find_value "test.gauge" with
     | Some (Telemetry.V_gauge n) -> Some n
     | _ -> None);
  (match Telemetry.find_value "test.histogram" with
   | Some (Telemetry.V_histogram s) ->
     Alcotest.(check int) "histogram count" 5 s.Telemetry.hs_count;
     Alcotest.(check int) "histogram sum" 20 s.Telemetry.hs_sum;
     Alcotest.(check int) "histogram max" 8 s.Telemetry.hs_max;
     Alcotest.(check bool) "buckets total = count" true
       (List.fold_left (fun a (_, n) -> a + n) 0 s.Telemetry.hs_buckets = 5)
   | _ -> Alcotest.fail "histogram not registered");
  (* same name returns the same metric, not a fresh one *)
  let c' = Telemetry.counter "test.counter" in
  Telemetry.incr c';
  Alcotest.(check (option int)) "creation is memoized by name"
    (Some 6)
    (match Telemetry.find_value "test.counter" with
     | Some (Telemetry.V_counter n) -> Some n
     | _ -> None);
  (* a name registered as one kind cannot come back as another *)
  Alcotest.check_raises "kind mismatch is an error"
    (Invalid_argument
       "Telemetry: metric test.counter exists with another kind")
    (fun () -> ignore (Telemetry.gauge "test.counter"))

let test_disabled_no_ops () =
  let c = Telemetry.counter "test.disabled.counter" in
  let g = Telemetry.gauge "test.disabled.gauge" in
  let h = Telemetry.histogram "test.disabled.histogram" in
  Telemetry.incr c;
  Telemetry.add c 10;
  Telemetry.set g 5;
  Telemetry.observe h 3;
  Telemetry.instant "test.disabled.instant";
  let r = Telemetry.with_span "test.disabled.span" (fun () -> 42) in
  Alcotest.(check int) "with_span is transparent when disabled" 42 r;
  Alcotest.(check (option int)) "disabled counter stays zero"
    (Some 0)
    (match Telemetry.find_value "test.disabled.counter" with
     | Some (Telemetry.V_counter n) -> Some n
     | _ -> None);
  Alcotest.(check int) "no events recorded when disabled" 0
    (List.length (Telemetry.events ()))

let test_reset () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.reset.counter" in
  Telemetry.add c 9;
  Telemetry.instant "test.reset.instant";
  Telemetry.reset ();
  Alcotest.(check (option int)) "reset zeroes metrics"
    (Some 0)
    (match Telemetry.find_value "test.reset.counter" with
     | Some (Telemetry.V_counter n) -> Some n
     | _ -> None);
  Alcotest.(check int) "reset drops events" 0
    (List.length (Telemetry.events ()));
  Alcotest.(check bool) "reset leaves the enabled flag alone" true
    (Telemetry.enabled ());
  (* the main domain's buffer survives a reset and keeps recording *)
  Telemetry.instant "test.reset.after";
  Alcotest.(check int) "recording continues after reset" 1
    (List.length (Telemetry.events ()))

(* ------------------------------------------------------------------ *)
(* Span balance and nesting                                           *)
(* ------------------------------------------------------------------ *)

(* Spans are recorded as complete (ts, dur) intervals at close; balance
   means that on any one domain's track two spans never partially
   overlap — each pair is disjoint or properly nested, which is exactly
   what lets Chrome reconstruct the stack. *)
let check_nesting evs =
  let spans =
    List.filter (fun e -> e.Telemetry.ev_kind = Telemetry.Span) evs
  in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun e ->
       let prev =
         Option.value ~default:[] (Hashtbl.find_opt by_tid e.Telemetry.ev_tid)
       in
       Hashtbl.replace by_tid e.Telemetry.ev_tid (e :: prev))
    spans;
  Hashtbl.iter
    (fun _tid es ->
       List.iteri
         (fun i a ->
            List.iteri
              (fun j b ->
                 if i < j then begin
                   let a0 = a.Telemetry.ev_ts
                   and a1 = a.Telemetry.ev_ts +. a.Telemetry.ev_dur in
                   let b0 = b.Telemetry.ev_ts
                   and b1 = b.Telemetry.ev_ts +. b.Telemetry.ev_dur in
                   let disjoint = a1 <= b0 || b1 <= a0 in
                   let nested =
                     (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1)
                   in
                   if not (disjoint || nested) then
                     Alcotest.failf
                       "spans %s and %s partially overlap on one track"
                       a.Telemetry.ev_name b.Telemetry.ev_name
                 end)
              es)
         es)
    by_tid;
  spans

let test_span_nesting () =
  Telemetry.enable ();
  (match (analyze ~jobs:2 ()).Taj.result with
   | Taj.Completed _ -> ()
   | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
  let spans = check_nesting (Telemetry.events ()) in
  let names =
    List.sort_uniq compare (List.map (fun e -> e.Telemetry.ev_name) spans)
  in
  Alcotest.(check bool) "at least 6 distinct phase span names" true
    (List.length names >= 6);
  List.iter
    (fun required ->
       Alcotest.(check bool) (required ^ " span present") true
         (List.mem required names))
    [ "phase.frontend"; "frontend.parse"; "frontend.ssa"; "phase.pointer";
      "pointer.fixpoint"; "pointer.cg_growth"; "phase.sdg"; "sdg.build";
      "phase.taint"; "taint.rule"; "report.lcp" ]

let test_span_on_raise () =
  Telemetry.enable ();
  (try
     Telemetry.with_span "test.raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  let names = List.map (fun e -> e.Telemetry.ev_name) (Telemetry.events ()) in
  Alcotest.(check bool) "a raising span still records (balance)" true
    (List.mem "test.raising" names)

let test_domain_tracks () =
  Telemetry.enable ();
  (match (analyze ~jobs:4 ()).Taj.result with
   | Taj.Completed _ -> ()
   | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
  let spans = check_nesting (Telemetry.events ()) in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Telemetry.ev_tid) spans)
  in
  Alcotest.(check bool) "jobs=4 records spans on multiple domain tracks"
    true
    (List.length tids > 1);
  let workers =
    List.filter (fun e -> e.Telemetry.ev_name = "parallel.worker") spans
  in
  Alcotest.(check bool) "pool workers appear as parallel.worker spans" true
    (workers <> [])

(* ------------------------------------------------------------------ *)
(* Trace JSON well-formedness                                         *)
(* ------------------------------------------------------------------ *)

(* A minimal JSON reader — no JSON library ships with the test stack, and
   the point is precisely to validate the hand-emitted trace document.
   Parses the full value grammar; raises [Failure] on any malformation. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let string_body () =
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | Some '"' -> advance (); Buffer.contents buf
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some 'u' ->
             advance ();
             for _ = 1 to 4 do
               (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape")
             done;
             Buffer.add_char buf '?'
           | Some c ->
             advance ();
             Buffer.add_char buf
               (match c with
                | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r'
                | 'b' -> '\b' | 'f' -> '\012' | '/' -> '/'
                | '"' -> '"' | '\\' -> '\\'
                | _ -> fail "bad escape")
           | None -> fail "eof in string");
          go ()
        | Some c -> advance (); Buffer.add_char buf c; go ()
        | None -> fail "eof in string"
      in
      go ()
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            expect '"';
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
      | Some '"' -> advance (); Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "eof"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None
end

let test_trace_json () =
  Telemetry.enable ();
  (match (analyze ~jobs:4 ()).Taj.result with
   | Taj.Completed _ -> ()
   | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
  let doc =
    match Json.parse (Telemetry.trace_json ()) with
    | doc -> doc
    | exception Failure msg -> Alcotest.failf "trace JSON malformed: %s" msg
  in
  let events =
    match Json.mem "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "trace has events" true (events <> []);
  let span_names = Hashtbl.create 16 and tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       (* every event carries the fields Chrome requires for its phase *)
       let str k =
         match Json.mem k ev with
         | Some (Json.Str s) -> s
         | _ -> Alcotest.failf "event missing string field %s" k
       in
       let num k =
         match Json.mem k ev with
         | Some (Json.Num f) -> f
         | _ -> Alcotest.failf "event missing numeric field %s" k
       in
       let name = str "name" in
       match str "ph" with
       | "X" ->
         Alcotest.(check bool) "span duration is non-negative" true
           (num "dur" >= 0.0);
         ignore (num "ts");
         Hashtbl.replace span_names name ();
         Hashtbl.replace tids (num "tid") ()
       | "i" -> ignore (num "ts")
       | "M" -> ()
       | ph -> Alcotest.failf "unexpected event phase %s" ph)
    events;
  Alcotest.(check bool) "at least 6 distinct span names in the JSON" true
    (Hashtbl.length span_names >= 6);
  Alcotest.(check bool) "multiple domain tracks in the JSON at jobs=4" true
    (Hashtbl.length tids > 1);
  (* thread-name metadata covers every track used by a span *)
  let named_tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       match (Json.mem "ph" ev, Json.mem "name" ev, Json.mem "tid" ev) with
       | Some (Json.Str "M"), Some (Json.Str "thread_name"), Some (Json.Num t)
         ->
         Hashtbl.replace named_tids t ()
       | _ -> ())
    events;
  Hashtbl.iter
    (fun tid () ->
       Alcotest.(check bool) "span tid has thread_name metadata" true
         (Hashtbl.mem named_tids tid))
    tids

let test_metrics_json () =
  Telemetry.enable ();
  (match (analyze ()).Taj.result with
   | Taj.Completed _ -> ()
   | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
  match Json.parse (Telemetry.metrics_json ()) with
  | Json.Obj fields ->
    List.iter
      (fun key ->
         Alcotest.(check bool) (key ^ " in metrics JSON") true
           (List.mem_assoc key fields))
      [ "pointer.propagations"; "sdg.nodes_scanned"; "taint.steps";
        "pointer.worklist_len" ]
  | _ -> Alcotest.fail "metrics JSON is not an object"
  | exception Failure msg -> Alcotest.failf "metrics JSON malformed: %s" msg

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                      *)
(* ------------------------------------------------------------------ *)

(* Order-independent sums: identical at any jobs. The def/use memo
   hit/miss counters and parallel.tasks are jobs-dependent by design
   (worker domains keep private memos; the sequential path bypasses the
   pool) and are deliberately absent here. *)
let deterministic_counters =
  [ "pointer.propagations"; "pointer.dispatches"; "pointer.fixpoint_rounds";
    "pointer.nodes_processed"; "pointer.dropped_calls";
    "pointer.cg_nodes_created"; "pointer.cg_edges_created";
    "sdg.nodes_scanned"; "taint.steps"; "taint.heap_transitions";
    "taint.visited"; "taint.hits"; "taint.flows"; "taint.seeds";
    "taint.rules"; "taint.slices" ]

let snapshot_counters () =
  List.map
    (fun name ->
       ( name,
         match Telemetry.find_value name with
         | Some (Telemetry.V_counter n) -> n
         | _ -> Alcotest.failf "counter %s missing" name ))
    deterministic_counters

let test_metrics_determinism () =
  Telemetry.enable ();
  let g =
    Workloads.Apps.generate ~scale:0.02
      (Option.get (Workloads.Apps.find "Friki"))
  in
  let run jobs =
    Telemetry.reset ();
    (match
       (Taj.analyze ~jobs (Workloads.Codegen.to_input g)).Taj.result
     with
     | Taj.Completed _ -> ()
     | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
    snapshot_counters ()
  in
  let seq = run 1 and par = run 4 in
  List.iter2
    (fun (name, a) (_, b) ->
       Alcotest.(check int) (name ^ " identical at jobs=1 and jobs=4") a b)
    seq par;
  Alcotest.(check bool) "the run did real work" true
    (List.assoc "pointer.propagations" seq > 0
     && List.assoc "taint.steps" seq > 0)

(* ------------------------------------------------------------------ *)
(* Resilience events on the trace                                     *)
(* ------------------------------------------------------------------ *)

let instant_names () =
  List.filter_map
    (fun e ->
       if e.Telemetry.ev_kind = Telemetry.Instant then
         Some e.Telemetry.ev_name
       else None)
    (Telemetry.events ())

let test_budget_trip_instant () =
  Telemetry.enable ();
  let b = Budget.create ~deadline:0.0 () in
  for _ = 1 to 64 do
    ignore (Budget.exceeded b)
  done;
  ignore (Budget.status b);
  let trips =
    List.filter (fun n -> n = "budget.trip") (instant_names ())
  in
  Alcotest.(check int) "a budget trips exactly one instant event" 1
    (List.length trips)

let test_fault_and_ladder_instants () =
  Telemetry.enable ();
  (* fail the pointer phase once: the supervisor records the phase fault
     and walks one rung down the ladder, all visible as instants *)
  Fault.arm Fault.site_andersen ~after:1;
  let outcome = Supervisor.run (input [ two_flows ]) in
  Alcotest.(check bool) "supervised run still completed" true
    (Supervisor.completed_report outcome <> None);
  let names = instant_names () in
  Alcotest.(check bool) "injected fault marked on the trace" true
    (List.mem "fault.injected" names);
  Alcotest.(check bool) "ladder step marked on the trace" true
    (List.mem "diag.downgraded" names);
  Alcotest.(check bool) "phase fault marked on the trace" true
    (List.mem "diag.phase-fault" names)

(* ------------------------------------------------------------------ *)
(* Disabled-mode overhead guard                                       *)
(* ------------------------------------------------------------------ *)

(* The probes stay in the build; the contract is that with telemetry off
   the whole pipeline pays under 2% for them. Estimated as
   (probes the enabled run counted) x (measured disabled-probe cost)
   against the disabled run's wall time — each factor is measured, not
   assumed. *)
let test_disabled_overhead () =
  let g =
    Workloads.Apps.generate ~scale:0.02
      (Option.get (Workloads.Apps.find "Friki"))
  in
  let input = Workloads.Codegen.to_input g in
  (* probe volume, from an instrumented run *)
  Telemetry.enable ();
  Telemetry.reset ();
  (match (Taj.analyze input).Taj.result with
   | Taj.Completed _ -> ()
   | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
  let probes =
    List.fold_left
      (fun acc (_, v) ->
         acc
         + (match v with
            | Telemetry.V_counter n -> n
            | Telemetry.V_gauge _ -> 1
            | Telemetry.V_histogram h -> h.Telemetry.hs_count))
      (List.length (Telemetry.events ()))
      (Telemetry.metrics ())
  in
  Telemetry.disable ();
  Telemetry.reset ();
  (* cost of one disabled probe: a tight loop over the fast path *)
  let c = Telemetry.counter "test.overhead.counter" in
  let iters = 5_000_000 in
  let (), loop_seconds =
    Telemetry.timed (fun () ->
      for _ = 1 to iters do
        Telemetry.incr c
      done)
  in
  let per_probe = loop_seconds /. float_of_int iters in
  Alcotest.(check bool) "a disabled probe costs under 100ns" true
    (per_probe < 100e-9);
  (* the same analysis with telemetry off *)
  let result, disabled_seconds = Telemetry.timed (fun () -> Taj.analyze input) in
  (match result.Taj.result with
   | Taj.Completed _ -> ()
   | Taj.Did_not_complete r -> Alcotest.failf "analysis failed: %s" r);
  let overhead =
    float_of_int probes *. per_probe /. Float.max disabled_seconds 1e-9
  in
  if overhead >= 0.02 then
    Alcotest.failf
      "disabled telemetry overhead %.4f%% (%d probes x %.1fns / %.4fs) \
       exceeds the 2%% guard"
      (100.0 *. overhead) probes (per_probe *. 1e9) disabled_seconds

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Armed without enable: events keep recording into a bounded ring (so
   the last moments before a crash are always dumpable), metric updates
   go live, but [enabled] stays false — no unbounded buffers, no
   exit-time exports. *)
let test_flight_ring_bounding () =
  Telemetry.arm_flight 16;
  Alcotest.(check bool) "armed is not enabled" false (Telemetry.enabled ());
  Alcotest.(check bool) "but the recorder is armed" true
    (Telemetry.flight_armed ());
  for i = 1 to 1000 do
    Telemetry.instant (Printf.sprintf "test.flight.%d" i)
  done;
  let ring = Telemetry.flight_events () in
  Alcotest.(check bool)
    (Printf.sprintf "ring stays bounded (%d kept)" (List.length ring))
    true
    (List.length ring <= 16 && List.length ring > 0);
  Alcotest.(check bool) "the newest event is retained" true
    (List.exists
       (fun (e : Telemetry.event) -> e.Telemetry.ev_name = "test.flight.1000")
       ring);
  Alcotest.(check bool) "the oldest event was evicted" false
    (List.exists
       (fun (e : Telemetry.event) -> e.Telemetry.ev_name = "test.flight.1")
       ring);
  (* metric updates are live while armed *)
  let c = Telemetry.counter "test.flight.counter" in
  Telemetry.incr c;
  Alcotest.(check (option int)) "counters record while armed"
    (Some 1)
    (match Telemetry.find_value "test.flight.counter" with
     | Some (Telemetry.V_counter n) -> Some n
     | _ -> None);
  (* the dump document is a valid Chrome trace with the flight label *)
  let doc = Telemetry.flight_json () in
  (match Serve.Json.parse doc with
   | Error e -> Alcotest.fail ("flight_json unparsable: " ^ e)
   | Ok _ -> ());
  Alcotest.(check bool) "flight doc labels the process" true
    (contains ~needle:"taj flight" doc)

(* ------------------------------------------------------------------ *)
(* Exports                                                            *)
(* ------------------------------------------------------------------ *)

let test_export_prometheus () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.export.counter" in
  let h = Telemetry.histogram "test.export.hist" in
  Telemetry.add c 5;
  List.iter (Telemetry.observe h) [ 0; 1; 3; 8; 8 ];
  let prom = Obs.Export.prometheus () in
  Alcotest.(check bool) "counter typed and valued" true
    (contains ~needle:"# TYPE taj_test_export_counter counter" prom
     && contains ~needle:"taj_test_export_counter 5" prom);
  Alcotest.(check bool) "histogram has cumulative buckets" true
    (contains ~needle:"# TYPE taj_test_export_hist histogram" prom
     && contains ~needle:"taj_test_export_hist_bucket{le=\"+Inf\"} 5" prom
     && contains ~needle:"taj_test_export_hist_count 5" prom
     && contains ~needle:"taj_test_export_hist_sum 20" prom);
  Alcotest.(check bool) "quantile companion gauges" true
    (contains ~needle:"taj_test_export_hist_p50" prom
     && contains ~needle:"taj_test_export_hist_p99" prom);
  Alcotest.(check bool) "exposition ends with the EOF marker" true
    (contains ~needle:"# EOF\n" prom);
  (* and the JSON form parses with the same numbers *)
  match Serve.Json.parse (Obs.Export.json ()) with
  | Error e -> Alcotest.fail ("metrics json unparsable: " ^ e)
  | Ok j ->
    Alcotest.(check (option int)) "json counter"
      (Some 5)
      (Serve.Json.int_member "test.export.counter" j);
    (match Serve.Json.member "test.export.hist" j with
     | Some hj ->
       Alcotest.(check (option int)) "json histogram count" (Some 5)
         (Serve.Json.int_member "count" hj)
     | None -> Alcotest.fail "histogram missing from json export")

let test_export_merge () =
  let hist count sum max_ buckets =
    Telemetry.V_histogram
      { Telemetry.hs_count = count; hs_sum = sum; hs_max = max_;
        hs_buckets = buckets }
  in
  let a =
    [ ("c", Telemetry.V_counter 2); ("g", Telemetry.V_gauge 1);
      ("h", hist 3 10 8 [ (1, 1); (8, 2) ]) ]
  in
  let b =
    [ ("c", Telemetry.V_counter 5); ("only_b", Telemetry.V_counter 1);
      ("h", hist 2 4 2 [ (2, 2) ]) ]
  in
  let m = Obs.Export.merge [ a; b ] in
  Alcotest.(check bool) "counters sum" true
    (List.assoc "c" m = Telemetry.V_counter 7);
  Alcotest.(check bool) "singletons survive" true
    (List.assoc "only_b" m = Telemetry.V_counter 1);
  (match List.assoc "h" m with
   | Telemetry.V_histogram s ->
     Alcotest.(check int) "histogram counts add" 5 s.Telemetry.hs_count;
     Alcotest.(check int) "histogram sums add" 14 s.Telemetry.hs_sum;
     Alcotest.(check int) "max of maxes" 8 s.Telemetry.hs_max;
     Alcotest.(check bool) "buckets merge sorted" true
       (s.Telemetry.hs_buckets = [ (1, 1); (2, 2); (8, 2) ])
   | _ -> Alcotest.fail "merged histogram lost its kind");
  (* exact nearest-rank percentiles, used by the bench harness *)
  let samples = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "p50 nearest-rank" 3.0
    (Obs.Export.percentile samples 0.5);
  Alcotest.(check (float 1e-9)) "p100 is the max" 5.0
    (Obs.Export.percentile samples 1.0);
  Alcotest.(check (float 1e-9)) "empty is zero" 0.0
    (Obs.Export.percentile [||] 0.99)

(* ------------------------------------------------------------------ *)
(* Structured log                                                     *)
(* ------------------------------------------------------------------ *)

let test_log_sink_levels_ndjson () =
  let lines = ref [] in
  Obs.Log.set_sink (Some (fun l -> lines := l :: !lines));
  Obs.Log.set_level Obs.Log.Info;
  Obs.Log.set_context [ ("proc", "test") ];
  Obs.Log.log ~level:Obs.Log.Debug "below.threshold";
  Obs.Log.log ~fields:[ ("job", "j1") ] "test.event";
  (* Telemetry.instant routes through the log even with telemetry off:
     diag.* infers warn, anything unprefixed infers debug (filtered) *)
  Telemetry.instant "diag.something" ~args:[ ("kind", "x") ];
  Telemetry.instant "quiet.event";
  let got = List.rev !lines in
  Alcotest.(check int) "debug lines filtered at info" 2 (List.length got);
  (match got with
   | [ first; second ] ->
     (match Serve.Json.parse first with
      | Error e -> Alcotest.fail ("log line unparsable: " ^ e)
      | Ok j ->
        Alcotest.(check (option string)) "event name" (Some "test.event")
          (Serve.Json.str_member "event" j);
        Alcotest.(check (option string)) "level" (Some "info")
          (Serve.Json.str_member "level" j);
        Alcotest.(check (option string)) "sticky context" (Some "test")
          (Serve.Json.str_member "proc" j);
        Alcotest.(check (option string)) "per-call field" (Some "j1")
          (Serve.Json.str_member "job" j);
        Alcotest.(check bool) "carries seq and ts" true
          (Serve.Json.member "seq" j <> None
           && Serve.Json.member "ts" j <> None));
     (match Serve.Json.parse second with
      | Error e -> Alcotest.fail ("instant line unparsable: " ^ e)
      | Ok j ->
        Alcotest.(check (option string)) "diag.* infers warn" (Some "warn")
          (Serve.Json.str_member "level" j);
        Alcotest.(check (option string)) "instant args become fields"
          (Some "x")
          (Serve.Json.str_member "kind" j))
   | _ -> Alcotest.fail "expected exactly the two passing lines");
  (* seq is monotonic across the stream *)
  let seqs =
    List.filter_map
      (fun l ->
         Result.to_option (Serve.Json.parse l)
         |> Fun.flip Option.bind (Serve.Json.int_member "seq"))
      got
  in
  Alcotest.(check bool) "seq strictly increases" true
    (match seqs with
     | [ a; b ] -> b > a
     | _ -> false);
  (* disabled fast path: no sink, emits are no-ops *)
  Obs.Log.set_sink None;
  Alcotest.(check bool) "no sink, not enabled" false (Obs.Log.enabled ());
  Obs.Log.log "dropped.silently";
  Alcotest.(check int) "nothing new arrived" 2 (List.length got)

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "counter/gauge/histogram" `Quick
      (isolated test_counter_gauge_histogram);
    Alcotest.test_case "disabled probes are no-ops" `Quick
      (isolated test_disabled_no_ops);
    Alcotest.test_case "reset" `Quick (isolated test_reset);
    Alcotest.test_case "span nesting over a pipeline run" `Quick
      (isolated test_span_nesting);
    Alcotest.test_case "raising spans still record" `Quick
      (isolated test_span_on_raise);
    Alcotest.test_case "per-domain tracks at jobs=4" `Quick
      (isolated test_domain_tracks);
    Alcotest.test_case "trace JSON well-formedness" `Quick
      (isolated test_trace_json);
    Alcotest.test_case "metrics JSON block" `Quick
      (isolated test_metrics_json);
    Alcotest.test_case "counter determinism jobs=1 vs jobs=4" `Slow
      (isolated test_metrics_determinism);
    Alcotest.test_case "budget trip instant" `Quick
      (isolated test_budget_trip_instant);
    Alcotest.test_case "fault and ladder instants" `Quick
      (isolated test_fault_and_ladder_instants);
    Alcotest.test_case "flight recorder: bounded ring while armed" `Quick
      (isolated test_flight_ring_bounding);
    Alcotest.test_case "export: prometheus exposition and json" `Quick
      (isolated test_export_prometheus);
    Alcotest.test_case "export: cross-process merge and percentiles"
      `Quick (isolated test_export_merge);
    Alcotest.test_case "log: levels, context, NDJSON shape" `Quick
      (isolated test_log_sink_levels_ndjson);
    Alcotest.test_case "disabled-mode overhead guard" `Slow
      (isolated test_disabled_overhead) ]
