(* The multi-process analysis cluster: framed proto round-trips, the
   consistent-hash routing ring, the cross-process zero-lost-jobs
   invariant, SIGKILL chaos (crash detection, rerouting, respawn), and
   drain aggregation. Every test forks real worker processes — the
   coordinator is single-domain, so forking from the test runner is safe
   as long as earlier suites joined their domains (they do). *)

let two_flows =
  {|class Cell { String v; }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        c.v = req.getParameter("x");
        resp.getWriter().println(c.v);
        Connection conn = DriverManager.getConnection("jdbc:db");
        Statement st = conn.createStatement();
        st.executeQuery(c.v);
      }
    }|}

let cluster_config ?(size = 2) ?(crash_retries = 2) () =
  { Serve.Cluster.default_config with
    size; crash_retries;
    announce = false;
    respawn_base = 0.05; respawn_max = 0.5;
    worker_breaker_threshold = 3; worker_breaker_cooldown = 0.2;
    service =
      { Serve.Service.default_config with
        workers = 1; queue_cap = 256; seed = 7 } }

(* Responses arrive on the coordinator (= test) thread, during pump /
   submit / drain calls: a plain list is safe. *)
let collector () =
  let responses = ref [] in
  let respond r = responses := r :: !responses in
  (responses, respond)

let pump_until c ~timeout pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout do
    Serve.Cluster.pump c ~timeout:0.02
  done

let submit_batch c respond ids =
  List.iter
    (fun (id, app) ->
       let rq =
         match app with
         | Some a -> Serve.Service.request ~app:a ~scale:0.02 id
         | None -> Serve.Service.request ~source:two_flows id
       in
       Serve.Cluster.submit c rq ~respond;
       Serve.Cluster.pump c ~timeout:0.0)
    ids

(* ------------------------------------------------------------------ *)
(* Proto framing                                                      *)
(* ------------------------------------------------------------------ *)

let test_proto_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* large enough to span many reads, small enough to fit the socketpair
     buffer: the writer has no concurrent reader in this test *)
  let big_source = String.concat "\n" (List.init 100 (fun _ -> two_flows)) in
  let rq =
    Serve.Service.request ~source:big_source ~descriptor:"d"
      ~algorithm:Core.Config.Cs_thin_slicing ~scale:0.25 ~deadline:3.5
      ~priority:9 "job-1"
  in
  let rp =
    { Serve.Service.rp_id = "job-1"; rp_status = Serve.Service.Degraded;
      rp_reason = "deadline"; rp_issues = 4; rp_attempts = 2;
      rp_degradations = 1; rp_seconds = 0.125; rp_verdict = None;
      rp_mismatched = None }
  in
  Serve.Proto.write a (Serve.Proto.Job rq);
  Serve.Proto.write a Serve.Proto.Drain;
  Serve.Proto.write a (Serve.Proto.Result rp);
  let r = Serve.Proto.reader b in
  (match Serve.Proto.read_block r with
   | `Msg (Serve.Proto.Job got) ->
     Alcotest.(check string) "job id survives" "job-1"
       got.Serve.Service.rq_id;
     Alcotest.(check bool) "large inline source survives" true
       (got.Serve.Service.rq_source = Some big_source);
     Alcotest.(check bool) "algorithm survives" true
       (got.Serve.Service.rq_algorithm = Core.Config.Cs_thin_slicing);
     Alcotest.(check bool) "deadline survives" true
       (got.Serve.Service.rq_deadline = Some 3.5);
     Alcotest.(check int) "priority survives" 9
       got.Serve.Service.rq_priority
   | _ -> Alcotest.fail "expected a Job frame");
  (match Serve.Proto.read_block r with
   | `Msg Serve.Proto.Drain -> ()
   | _ -> Alcotest.fail "expected a Drain frame");
  (match Serve.Proto.read_block r with
   | `Msg (Serve.Proto.Result got) ->
     Alcotest.(check bool) "response round-trips" true (got = rp)
   | _ -> Alcotest.fail "expected a Result frame");
  Unix.close a;
  (match Serve.Proto.read_block r with
   | `Eof -> ()
   | _ -> Alcotest.fail "expected EOF after peer close");
  Unix.close b

let test_proto_partial_frames () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* hand-build a Drain frame and deliver it byte-dribbled: the reader
     must report Pending, never a torn frame *)
  let payload = "{\"t\":\"drain\"}" in
  let n = String.length payload in
  let frame =
    Printf.sprintf "%c%c%c%c%s"
      (Char.chr ((n lsr 24) land 0xff))
      (Char.chr ((n lsr 16) land 0xff))
      (Char.chr ((n lsr 8) land 0xff))
      (Char.chr (n land 0xff))
      payload
  in
  let r = Serve.Proto.reader b in
  Alcotest.(check bool) "nothing yet: pending" true
    (Serve.Proto.read_nonblock r = `Pending);
  Serve.Io.write_all a (String.sub frame 0 3);
  Alcotest.(check bool) "torn length prefix: pending" true
    (Serve.Proto.read_nonblock r = `Pending);
  Serve.Io.write_all a (String.sub frame 3 5);
  Alcotest.(check bool) "torn payload: pending" true
    (Serve.Proto.read_nonblock r = `Pending);
  Serve.Io.write_all a
    (String.sub frame 8 (String.length frame - 8));
  (match Serve.Proto.read_nonblock r with
   | `Msg Serve.Proto.Drain -> ()
   | _ -> Alcotest.fail "expected the completed Drain frame");
  (* a frame torn by a crash: length prefix promises more than arrives *)
  Serve.Io.write_all a (String.sub frame 0 6);
  Unix.close a;
  (match Serve.Proto.read_block r with
   | `Eof -> ()
   | _ -> Alcotest.fail "torn trailing frame must read as EOF");
  Unix.close b

(* The admin frames (interim health, metrics snapshots, flight dumps,
   forwarded log lines) ride the same framed pipe as jobs. *)
let test_proto_admin_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let kvs =
    [ ("cache.hit", Obs.Telemetry.V_counter 12);
      ("serve.queue_depth", Obs.Telemetry.V_gauge 3);
      ( "serve.latency_ms",
        Obs.Telemetry.V_histogram
          { Obs.Telemetry.hs_count = 5; hs_sum = 40; hs_max = 16;
            hs_buckets = [ (1, 2); (8, 3) ] } ) ]
  in
  let log_line = {|{"seq":4,"ts":1.5,"level":"info","event":"serve.admit"}|} in
  List.iter (Serve.Proto.write a)
    [ Serve.Proto.Health_req; Serve.Proto.Metrics_req;
      Serve.Proto.Dump_req; Serve.Proto.Metrics kvs;
      Serve.Proto.Dump "{\"traceEvents\":[]}";
      Serve.Proto.Log_line log_line ];
  let r = Serve.Proto.reader b in
  let next () =
    match Serve.Proto.read_block r with
    | `Msg m -> m
    | _ -> Alcotest.fail "expected a frame"
  in
  Alcotest.(check bool) "health_req" true (next () = Serve.Proto.Health_req);
  Alcotest.(check bool) "metrics_req" true
    (next () = Serve.Proto.Metrics_req);
  Alcotest.(check bool) "dump_req" true (next () = Serve.Proto.Dump_req);
  (match next () with
   | Serve.Proto.Metrics got ->
     Alcotest.(check bool) "metrics snapshot round-trips" true (got = kvs)
   | _ -> Alcotest.fail "expected a Metrics frame");
  (match next () with
   | Serve.Proto.Dump d ->
     Alcotest.(check string) "dump round-trips" "{\"traceEvents\":[]}" d
   | _ -> Alcotest.fail "expected a Dump frame");
  (match next () with
   | Serve.Proto.Log_line l ->
     Alcotest.(check string) "log line verbatim" log_line l
   | _ -> Alcotest.fail "expected a Log_line frame");
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Routing ring                                                       *)
(* ------------------------------------------------------------------ *)

let test_ring_routing () =
  let c = Serve.Cluster.create ~config:(cluster_config ~size:4 ()) () in
  Fun.protect
    ~finally:(fun () -> Serve.Cluster.await_drained c)
    (fun () ->
       let keys = List.init 200 (Printf.sprintf "app-%d") in
       let routes = List.map (fun k -> Serve.Cluster.route c k) keys in
       Alcotest.(check bool) "routing is deterministic" true
         (routes = List.map (fun k -> Serve.Cluster.route c k) keys);
       let hits = Array.make 4 0 in
       List.iter (fun w -> hits.(w) <- hits.(w) + 1) routes;
       Array.iteri
         (fun i n ->
            Alcotest.(check bool)
              (Printf.sprintf "worker %d gets a fair share" i)
              true (n > 0))
         hits;
       Alcotest.(check bool) "same app, same worker" true
         (Serve.Cluster.route c "BlueBlog"
          = Serve.Cluster.route c "BlueBlog"))

(* ------------------------------------------------------------------ *)
(* End-to-end: every job terminal exactly once; 1 ≡ 4 workers         *)
(* ------------------------------------------------------------------ *)

let run_batch ~size ids =
  let c = Serve.Cluster.create ~config:(cluster_config ~size ()) () in
  let responses, respond = collector () in
  submit_batch c respond ids;
  pump_until c ~timeout:60.0 (fun () -> Serve.Cluster.idle c);
  Serve.Cluster.await_drained c;
  let h = Serve.Cluster.health c in
  (!responses, h)

let test_cluster_completes_batch () =
  let ids =
    List.init 8 (fun i ->
      (Printf.sprintf "b%d" i, if i mod 2 = 0 then Some "BlueBlog" else None))
  in
  let rs, h = run_batch ~size:2 ids in
  Alcotest.(check int) "every job answered exactly once" 8 (List.length rs);
  List.iter
    (fun (id, _) ->
       Alcotest.(check int)
         (Printf.sprintf "one terminal response for %s" id)
         1
         (List.length
            (List.filter (fun r -> r.Serve.Service.rp_id = id) rs)))
    ids;
  Alcotest.(check bool) "all completed" true
    (List.for_all
       (fun r -> r.Serve.Service.rp_status = Serve.Service.Completed)
       rs);
  Alcotest.(check bool) "clean drain" true (Serve.Cluster.clean_drain h);
  Alcotest.(check int) "coordinator counted them" 8 h.Serve.Cluster.ch_submitted;
  Alcotest.(check int) "no crashes" 0 h.Serve.Cluster.ch_crashes

(* Per-job analysis output must not depend on the cluster size: the same
   batch through 1 and 4 workers yields identical (status, issues) per
   job. *)
let test_cluster_size_invariant () =
  let ids =
    List.init 10 (fun i ->
      (Printf.sprintf "d%d" i, if i mod 3 = 0 then Some "BlueBlog" else None))
  in
  let key rs =
    rs
    |> List.map (fun r ->
      ( r.Serve.Service.rp_id,
        Serve.Service.status_name r.Serve.Service.rp_status,
        r.Serve.Service.rp_issues ))
    |> List.sort compare
  in
  let rs1, _ = run_batch ~size:1 ids in
  let rs4, _ = run_batch ~size:4 ids in
  Alcotest.(check bool)
    "per-job output identical across cluster sizes" true
    (key rs1 = key rs4)

(* ------------------------------------------------------------------ *)
(* SIGKILL chaos                                                      *)
(* ------------------------------------------------------------------ *)

let test_cluster_sigkill_chaos () =
  let c = Serve.Cluster.create ~config:(cluster_config ~size:4 ()) () in
  let responses, respond = collector () in
  (* all of these route to one worker: the one we are about to murder *)
  let victim = Serve.Cluster.route c "BlueBlog" in
  let pids = Array.of_list (Serve.Cluster.worker_pids c) in
  Alcotest.(check int) "four workers live" 4 (Array.length pids);
  let wave1 =
    List.init 6 (fun i -> (Printf.sprintf "k%d" i, Some "BlueBlog"))
  in
  submit_batch c respond wave1;
  (* SIGKILL mid-batch: the jobs above are in flight on the victim *)
  Unix.kill pids.(victim) Sys.sigkill;
  pump_until c ~timeout:60.0 (fun () ->
    Serve.Cluster.idle c && List.length !responses >= 6);
  Alcotest.(check int) "zero lost, zero duplicated" 6
    (List.length !responses);
  List.iteri
    (fun i _ ->
       let id = Printf.sprintf "k%d" i in
       Alcotest.(check int)
         (Printf.sprintf "exactly one terminal response for %s" id)
         1
         (List.length
            (List.filter
               (fun r -> r.Serve.Service.rp_id = id)
               !responses)))
    wave1;
  (* the dead worker respawns and serves subsequent jobs routed to it *)
  pump_until c ~timeout:10.0 (fun () ->
    (Serve.Cluster.health c).Serve.Cluster.ch_respawns >= 1);
  let wave2 =
    List.init 4 (fun i -> (Printf.sprintf "p%d" i, Some "BlueBlog"))
  in
  submit_batch c respond wave2;
  pump_until c ~timeout:60.0 (fun () ->
    Serve.Cluster.idle c && List.length !responses >= 10);
  Serve.Cluster.await_drained c;
  let h = Serve.Cluster.health c in
  Alcotest.(check int) "second wave answered too" 10
    (List.length !responses);
  Alcotest.(check bool) "post-respawn jobs completed" true
    (List.for_all
       (fun (id, _) ->
          List.exists
            (fun r ->
               r.Serve.Service.rp_id = id
               && r.Serve.Service.rp_status = Serve.Service.Completed)
            !responses)
       wave2);
  Alcotest.(check bool) "the crash was observed" true
    (h.Serve.Cluster.ch_crashes >= 1);
  Alcotest.(check bool) "the worker respawned" true
    (h.Serve.Cluster.ch_respawns >= 1);
  Alcotest.(check bool) "a crash diagnostic was recorded" true
    (List.exists
       (function
         | Core.Diagnostics.Worker_exited _ -> true
         | _ -> false)
       (Serve.Cluster.events c));
  Alcotest.(check bool) "a respawn diagnostic was recorded" true
    (List.exists
       (function
         | Core.Diagnostics.Worker_respawned _ -> true
         | _ -> false)
       (Serve.Cluster.events c));
  (* killed mid-batch yet the drain stays clean: crash recovery answered
     every job, nothing was shed or turned away *)
  Alcotest.(check bool) "clean drain despite the kill" true
    (Serve.Cluster.clean_drain h)

(* Past the crash budget the job is answered failed:worker_crashed, not
   lost and not retried forever. *)
let test_cluster_crash_budget () =
  let c =
    Serve.Cluster.create
      ~config:(cluster_config ~size:1 ~crash_retries:0 ()) ()
  in
  let responses, respond = collector () in
  let victim =
    match Serve.Cluster.worker_pids c with
    | [ pid ] -> pid
    | _ -> Alcotest.fail "expected one worker"
  in
  Serve.Cluster.submit c
    (Serve.Service.request ~app:"BlueBlog" ~scale:0.02 "doomed")
    ~respond;
  Unix.kill victim Sys.sigkill;
  pump_until c ~timeout:30.0 (fun () -> List.length !responses >= 1);
  (match !responses with
   | [ r ] ->
     Alcotest.(check string) "failed terminally" "failed"
       (Serve.Service.status_name r.Serve.Service.rp_status);
     Alcotest.(check string) "with the crash reason" "worker_crashed"
       r.Serve.Service.rp_reason
   | rs ->
     Alcotest.fail
       (Printf.sprintf "expected exactly one response, got %d"
          (List.length rs)));
  Serve.Cluster.await_drained c

(* ------------------------------------------------------------------ *)
(* Admin channel under chaos                                          *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Mid-batch SIGKILL of one worker must not corrupt the admin channel:
   the aggregated health reply stays well-formed, the Prometheus scrape
   parses (and still carries the serve counters), and the crash itself
   triggers a flight-recorder dump containing the dead worker's last
   spans — recovered from its on-disk ring snapshot, since the process
   is gone. *)
let test_cluster_admin_under_chaos () =
  let dir = Filename.temp_file "taj-flight" "" in
  Unix.unlink dir;
  Unix.mkdir dir 0o700;
  let dump = Filename.concat dir "flight.json" in
  (* armed before the fork so workers inherit the ring *)
  Obs.Telemetry.arm_flight 64;
  Fun.protect
    ~finally:(fun () ->
      Obs.Telemetry.arm_flight 0;
      Array.iter
        (fun f ->
           try Unix.unlink (Filename.concat dir f)
           with Unix.Unix_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let cfg =
        { (cluster_config ~size:2 ()) with
          Serve.Cluster.flight_dump = Some dump }
      in
      let c = Serve.Cluster.create ~config:cfg () in
      let responses, respond = collector () in
      let victim = Serve.Cluster.route c "BlueBlog" in
      (* one completed job first, so the victim's ring snapshot file is
         on disk before the murder *)
      submit_batch c respond [ ("warm", Some "BlueBlog") ];
      pump_until c ~timeout:60.0 (fun () -> List.length !responses >= 1);
      let wave =
        List.init 4 (fun i -> (Printf.sprintf "a%d" i, Some "BlueBlog"))
      in
      submit_batch c respond wave;
      let pids = Array.of_list (Serve.Cluster.worker_pids c) in
      Unix.kill pids.(victim) Sys.sigkill;
      (* aggregated replies while the crash is being detected/handled *)
      (match Serve.Json.parse (Serve.Cluster.admin_reply c "health") with
       | Error e -> Alcotest.fail ("admin health unparsable: " ^ e)
       | Ok j ->
         Alcotest.(check bool) "health covers both workers" true
           (match Serve.Json.member "workers" j with
            | Some (Serve.Json.Arr ws) -> List.length ws = 2
            | _ -> false));
      let prom = Serve.Cluster.admin_reply c "metrics" in
      Alcotest.(check bool) "scrape carries the serve counters" true
        (contains ~needle:"taj_serve_completed" prom);
      Alcotest.(check bool) "scrape ends with the EOF marker" true
        (contains ~needle:"# EOF" prom);
      pump_until c ~timeout:60.0 (fun () ->
        Serve.Cluster.idle c && List.length !responses >= 5);
      Alcotest.(check int) "every job still answered exactly once" 5
        (List.length !responses);
      (* the crash wrote a merged dump; the dead worker's lane is pid
         [victim index + 2] *)
      let doc = Serve.Io.read_file dump in
      Alcotest.(check bool) "flight dump is non-empty" true
        (String.length doc > 0);
      (match Serve.Json.parse doc with
       | Error e -> Alcotest.fail ("flight dump unparsable: " ^ e)
       | Ok _ -> ());
      Alcotest.(check bool) "dump holds the crashed worker's events" true
        (contains ~needle:(Printf.sprintf "\"pid\":%d," (victim + 2)) doc);
      Serve.Cluster.await_drained c)

(* ------------------------------------------------------------------ *)
(* Drain aggregation                                                  *)
(* ------------------------------------------------------------------ *)

let test_cluster_drain_aggregates () =
  let ids = List.init 6 (fun i -> (Printf.sprintf "h%d" i, None)) in
  let rs, h = run_batch ~size:2 ids in
  Alcotest.(check int) "all jobs terminal" 6 (List.length rs);
  Alcotest.(check int) "snapshot covers both workers" 2
    (List.length h.Serve.Cluster.ch_workers);
  List.iter
    (fun (w : Serve.Cluster.worker_health) ->
       Alcotest.(check bool)
         (Printf.sprintf "worker %d sent its final health" w.wh_index)
         true
         (w.Serve.Cluster.wh_health <> None))
    h.Serve.Cluster.ch_workers;
  let worker_submitted =
    List.fold_left
      (fun acc (w : Serve.Cluster.worker_health) ->
         match w.Serve.Cluster.wh_health with
         | Some sh -> acc + sh.Serve.Service.h_submitted
         | None -> acc)
      0 h.Serve.Cluster.ch_workers
  in
  Alcotest.(check int)
    "worker-side submissions sum to the coordinator's" 6 worker_submitted;
  Alcotest.(check int) "coordinator terminal accounting" 6
    (h.Serve.Cluster.ch_completed + h.Serve.Cluster.ch_degraded
     + h.Serve.Cluster.ch_failed + h.Serve.Cluster.ch_rejected);
  (* the aggregated snapshot is valid NDJSON with per-worker blocks *)
  match Serve.Json.parse (Serve.Cluster.health_json h) with
  | Error e -> Alcotest.fail ("health_json unparsable: " ^ e)
  | Ok j ->
    Alcotest.(check bool) "health json carries the worker array" true
      (match Serve.Json.member "workers" j with
       | Some (Serve.Json.Arr ws) -> List.length ws = 2
       | _ -> false)

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "proto: frame round-trip" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "proto: admin frames round-trip" `Quick
      test_proto_admin_roundtrip;
    Alcotest.test_case "proto: partial and torn frames" `Quick
      test_proto_partial_frames;
    Alcotest.test_case "ring: deterministic balanced routing" `Slow
      test_ring_routing;
    Alcotest.test_case "cluster: batch terminal exactly once" `Slow
      test_cluster_completes_batch;
    Alcotest.test_case "cluster: output identical at 1 and 4 workers"
      `Slow test_cluster_size_invariant;
    Alcotest.test_case "chaos: SIGKILL mid-batch, reroute and respawn"
      `Slow test_cluster_sigkill_chaos;
    Alcotest.test_case "chaos: crash budget exhausts to failed" `Slow
      test_cluster_crash_budget;
    Alcotest.test_case
      "admin: aggregated replies and flight dump under SIGKILL" `Slow
      test_cluster_admin_under_chaos;
    Alcotest.test_case "drain: aggregates per-worker health" `Slow
      test_cluster_drain_aggregates ]
