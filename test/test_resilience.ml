(* Resilience of the supervised pipeline: injected faults in every phase
   are contained as structured diagnostics (never exceptions), the
   degradation ladder retries in the documented order, and an expired
   deadline yields a clearly-marked partial report whose flows are a
   subset of the unbounded run's. *)

open Core

let input srcs =
  { Taj.name = "resilience"; app_sources = srcs; descriptor = "" }

(* two flows (xss + sqli) and a heap hop, so every injection site —
   parse, pointer solver, SDG scan, tabulation step, heap transition —
   is guaranteed to tick at least once *)
let two_flows =
  {|class Cell { String v; }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        c.v = req.getParameter("x");
        resp.getWriter().println(c.v);
        Connection conn = DriverManager.getConnection("jdbc:db");
        Statement st = conn.createStatement();
        st.executeQuery(c.v);
      }
    }|}

let supervise ?(options = Supervisor.default_options) () =
  Supervisor.run ~options (input [ two_flows ])

let issue_count (outcome : Supervisor.outcome) =
  Report.issue_count outcome.Supervisor.sv_report

(* ------------------------------------------------------------------ *)
(* Budget                                                             *)
(* ------------------------------------------------------------------ *)

let poll_n budget n =
  let hit = ref false in
  for _ = 1 to n do
    if Budget.exceeded budget then hit := true
  done;
  !hit

let test_budget_deadline () =
  let b = Budget.create ~deadline:0.0 () in
  Alcotest.(check bool) "an expired deadline trips within 64 polls" true
    (poll_n b 64);
  Alcotest.(check bool) "tripped latches" true (Budget.tripped b);
  let b = Budget.create ~deadline:3600.0 () in
  Alcotest.(check bool) "a distant deadline does not trip" false
    (poll_n b 1000)

let test_budget_cancel () =
  let token = Atomic.make false in
  let b = Budget.create ~cancel:token () in
  Alcotest.(check bool) "not cancelled yet" false (Budget.exceeded b);
  Atomic.set token true;
  Alcotest.(check bool) "cancellation is seen on the next poll" true
    (Budget.exceeded b);
  Alcotest.(check bool) "status reports cancellation" true
    (Budget.status b = Budget.Cancelled)

let test_budget_steps () =
  let b = Budget.create ~max_steps:10 () in
  Alcotest.(check bool) "within the step budget" false (poll_n b 10);
  Alcotest.(check bool) "exceeding the step budget trips" true (poll_n b 5)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  Alcotest.(check bool) "an unlimited budget never trips" false
    (poll_n b 1000)

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                 *)
(* ------------------------------------------------------------------ *)

let test_ladder_order () =
  let rungs =
    Config.degradation_ladder (Config.preset Config.Hybrid_unbounded)
  in
  Alcotest.(check (list string))
    "prioritized, then shrinking optimized, then triage"
    [ "hybrid-prioritized"; "hybrid-optimized"; "hybrid-optimized";
      "hybrid-optimized"; "triage" ]
    (List.map (fun (_, c) -> Config.algorithm_name c.Config.algorithm) rungs);
  let scales = List.map fst rungs in
  Alcotest.(check bool) "scales shrink monotonically" true
    (List.for_all2 ( >= ) scales (List.tl scales @ [ 0.0 ]))

(* ------------------------------------------------------------------ *)
(* Fault injection, one site per pipeline phase                       *)
(* ------------------------------------------------------------------ *)

(* the acceptance contract: with a fault in any phase the supervisor never
   raises, and yields either a degraded complete run or a partial report —
   in both cases with at least one recorded degradation *)
let check_contained site =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm site ~after:1;
  let outcome = supervise () in
  Alcotest.(check bool) (site ^ ": fault fired") true (Fault.fired site > 0);
  Alcotest.(check bool) (site ^ ": degradation recorded") true
    (outcome.Supervisor.sv_diagnostics <> []);
  match outcome.Supervisor.sv_analysis with
  | Some { Taj.result = Taj.Completed _; _ } -> ()
  | Some { Taj.result = Taj.Did_not_complete _; _ } | None ->
    Alcotest.failf "%s: no rung completed: %s" site
      (Fmt.str "%a"
         (Fmt.list ~sep:Fmt.comma Diagnostics.pp_degradation)
         outcome.Supervisor.sv_diagnostics)

let test_fault_parse () = check_contained Fault.site_parse
let test_fault_andersen () = check_contained Fault.site_andersen
let test_fault_sdg () = check_contained Fault.site_sdg
let test_fault_tabulation () = check_contained Fault.site_tabulation
let test_fault_heap () = check_contained Fault.site_heap

let test_oneshot_fault_recovers_via_ladder () =
  (* a one-shot pointer-phase fault kills the first rung; the supervisor
     downgrades and the next rung completes with the flows intact *)
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm Fault.site_andersen ~after:1;
  let outcome = supervise () in
  Alcotest.(check bool) "a later rung completed" true
    (Supervisor.completed_report outcome <> None);
  Alcotest.(check bool) "the downgrade was recorded" true
    (List.exists
       (function Diagnostics.Downgraded _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  Alcotest.(check bool) "the phase fault was recorded" true
    (List.exists
       (function Diagnostics.Phase_fault _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  Alcotest.(check int) "both flows survive the downgrade" 2
    (issue_count outcome)

let test_persistent_fault_exhausts_ladder () =
  (* a fault that fires on every rung walks the whole ladder in order and
     still ends in a value: an empty, explicitly partial report *)
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm ~once:false Fault.site_andersen ~after:1;
  let outcome = supervise () in
  Alcotest.(check (list string)) "every rung was attempted, in order"
    [ "hybrid-unbounded"; "hybrid-prioritized"; "hybrid-optimized";
      "hybrid-optimized"; "hybrid-optimized"; "triage" ]
    (List.map
       (fun (a : Supervisor.attempt) ->
          Config.algorithm_name a.Supervisor.at_algorithm)
       outcome.Supervisor.sv_attempts);
  Alcotest.(check int) "five downgrades recorded" 5
    (List.length
       (List.filter
          (function Diagnostics.Downgraded _ -> true | _ -> false)
          outcome.Supervisor.sv_diagnostics));
  (* the pointer fault cannot touch rung zero, which needs no pointer
     analysis: the floor still answers, as an explicitly type-only report *)
  Alcotest.(check bool) "the final report is partial" true
    (Report.is_partial outcome.Supervisor.sv_report);
  Alcotest.(check bool) "and type-only" true
    (Supervisor.type_only outcome);
  Alcotest.(check int) "and empty of flow-path issues" 0
    (issue_count outcome)

let test_no_degrade_fails_fast () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm ~once:false Fault.site_andersen ~after:1;
  let options = { Supervisor.default_options with Supervisor.degrade = false } in
  let outcome = supervise ~options () in
  Alcotest.(check int) "exactly one attempt" 1
    (List.length outcome.Supervisor.sv_attempts)

let test_rule_fault_is_isolated () =
  (* a fault inside the first rule's tabulation is charged to that rule
     only; the remaining rules still run and report their flows *)
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm Fault.site_tabulation ~after:1;
  let outcome = supervise () in
  Alcotest.(check bool) "one rule failed" true
    (List.exists
       (function Diagnostics.Rule_failed _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  Alcotest.(check bool) "the other rules still found flows" true
    (issue_count outcome >= 1);
  Alcotest.(check bool) "the report is marked partial" true
    (Report.is_partial outcome.Supervisor.sv_report)

(* ------------------------------------------------------------------ *)
(* Deadlines and partial results                                      *)
(* ------------------------------------------------------------------ *)

let flow_keys (r : Report.t) =
  List.map
    (fun (fl : Flows.t) ->
       (fl.Flows.fl_rule.Rules.rule_name, fl.Flows.fl_length))
    r.Report.raw_flows

let test_expired_deadline_yields_partial_report () =
  (* deadline 0: already expired when the first phase starts polling; on a
     real workload this must interrupt mid-phase and surface as a partial
     report, never as an exception or an empty Did_not_complete *)
  let app = Option.get (Workloads.Apps.find "GridSphere") in
  let gen = Workloads.Apps.generate ~scale:0.02 app in
  let options =
    { Supervisor.default_options with Supervisor.deadline = Some 0.0 }
  in
  let outcome =
    Supervisor.run ~options (Workloads.Codegen.to_input gen)
  in
  let report =
    match Supervisor.completed_report outcome with
    | Some r -> r
    | None -> Alcotest.fail "deadline must yield a report, not a failure"
  in
  Alcotest.(check bool) "the report is partial" true
    (Report.is_partial report);
  Alcotest.(check bool) "a deadline event was recorded" true
    (List.exists
       (function Diagnostics.Deadline_expired _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  (* and the partial flows are a subset of the unbounded run's flows *)
  let full = Supervisor.run (Workloads.Codegen.to_input gen) in
  let full_keys = flow_keys full.Supervisor.sv_report in
  Alcotest.(check bool) "the unbounded run is complete" false
    (Report.is_partial full.Supervisor.sv_report);
  Alcotest.(check bool) "partial flows are a subset of the full run's" true
    (List.for_all
       (fun k -> List.mem k full_keys)
       (flow_keys report))

let test_cancellation_yields_partial_report () =
  let token = Atomic.make true in (* cancelled before the analysis starts *)
  let options =
    { Supervisor.default_options with Supervisor.cancel = token }
  in
  let outcome = supervise ~options () in
  Alcotest.(check bool) "a cancellation event was recorded" true
    (List.exists
       (function Diagnostics.Cancelled _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  Alcotest.(check bool) "the report is partial" true
    (Report.is_partial outcome.Supervisor.sv_report)

let test_unfaulted_run_is_complete () =
  Fault.reset ();
  let outcome = supervise () in
  Alcotest.(check bool) "no diagnostics" true
    (outcome.Supervisor.sv_diagnostics = []);
  Alcotest.(check bool) "complete report" false
    (Report.is_partial outcome.Supervisor.sv_report);
  Alcotest.(check int) "both flows found" 2 (issue_count outcome)

let suite =
  [ Alcotest.test_case "budget deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget cancel" `Quick test_budget_cancel;
    Alcotest.test_case "budget steps" `Quick test_budget_steps;
    Alcotest.test_case "budget unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "ladder order" `Quick test_ladder_order;
    Alcotest.test_case "fault in parse contained" `Quick test_fault_parse;
    Alcotest.test_case "fault in pointer contained" `Quick test_fault_andersen;
    Alcotest.test_case "fault in sdg contained" `Quick test_fault_sdg;
    Alcotest.test_case "fault in tabulation contained" `Quick
      test_fault_tabulation;
    Alcotest.test_case "fault in heap transition contained" `Quick
      test_fault_heap;
    Alcotest.test_case "one-shot fault recovers via ladder" `Quick
      test_oneshot_fault_recovers_via_ladder;
    Alcotest.test_case "persistent fault exhausts ladder" `Quick
      test_persistent_fault_exhausts_ladder;
    Alcotest.test_case "no-degrade fails fast" `Quick test_no_degrade_fails_fast;
    Alcotest.test_case "rule fault is isolated" `Quick
      test_rule_fault_is_isolated;
    Alcotest.test_case "expired deadline yields partial report" `Quick
      test_expired_deadline_yields_partial_report;
    Alcotest.test_case "cancellation yields partial report" `Quick
      test_cancellation_yields_partial_report;
    Alcotest.test_case "unfaulted run is complete" `Quick
      test_unfaulted_run_is_complete ]
