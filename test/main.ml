let () =
  Alcotest.run "taj"
    [ ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("lower", Test_lower.suite);
      ("ssa", Test_ssa.suite);
      ("cfg", Test_cfg.suite);
      ("pretty", Test_pretty.suite);
      ("taint", Test_taint.suite);
      ("reflection", Test_reflection.suite);
      ("frameworks", Test_frameworks.suite);
      ("algorithms", Test_algorithms.suite);
      ("pointer", Test_pointer.suite);
      ("sdg", Test_sdg.suite);
      ("backward", Test_backward.suite);
      ("workloads", Test_workloads.suite);
      ("models", Test_models.suite);
      ("string-context", Test_string_context.suite);
      ("strings", Test_strings.suite);
      ("jsp", Test_jsp.suite);
      ("csrf", Test_csrf.suite);
      ("metamorphic", Test_metamorphic.suite);
      ("reproduction", Test_reproduction.suite);
      ("corpus", Test_corpus.suite);
      ("rules", Test_rules.suite);
      ("resilience", Test_resilience.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("service", Test_service.suite);
      ("securibench", Test_securibench.suite);
      ("refine", Test_refine.suite);
      ("triage", Test_triage.suite);
      ("incremental", Test_incremental.suite) ]
