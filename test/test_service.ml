(* The resilient analysis service: the zero-lost-jobs invariant under
   chaos (every submitted job reaches exactly one terminal state), the
   bounded queue's backpressure, the circuit-breaker state machine, the
   deterministic retry schedule, the memory watchdog's degradation, and
   graceful drain on SIGTERM. *)

open Core

let two_flows =
  {|class Cell { String v; }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        c.v = req.getParameter("x");
        resp.getWriter().println(c.v);
        Connection conn = DriverManager.getConnection("jdbc:db");
        Statement st = conn.createStatement();
        st.executeQuery(c.v);
      }
    }|}

(* A response collector that can block until all expected jobs are
   terminal, so tests can keep the service out of drain mode while work
   is still in flight (drain legitimately changes the retry policy). *)
module Collector = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    mutable responses : Serve.Service.response list;
  }

  let create () =
    { lock = Mutex.create (); cond = Condition.create (); responses = [] }

  let respond t r =
    Mutex.lock t.lock;
    t.responses <- r :: t.responses;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock

  let await t n =
    Mutex.lock t.lock;
    while List.length t.responses < n do
      Condition.wait t.cond t.lock
    done;
    let rs = t.responses in
    Mutex.unlock t.lock;
    rs

  let find t id =
    Mutex.lock t.lock;
    let r =
      List.find_opt (fun r -> r.Serve.Service.rp_id = id) t.responses
    in
    Mutex.unlock t.lock;
    r
end

let service_config ?(workers = 2) ?(queue_cap = 256) ?(max_retries = 2)
    ?(seed = 7) ?(breaker_threshold = 5) ?(breaker_cooldown = 3600.0)
    ?mem_soft_limit_mb ?(sleep = Serve.Io.sleepf) () =
  { Serve.Service.default_config with
    workers; queue_cap; max_retries; seed; breaker_threshold;
    breaker_cooldown; mem_soft_limit_mb; sleep }

let status_counts rs =
  List.fold_left
    (fun (c, d, r, f) (resp : Serve.Service.response) ->
       match resp.Serve.Service.rp_status with
       | Serve.Service.Completed -> (c + 1, d, r, f)
       | Serve.Service.Degraded -> (c, d + 1, r, f)
       | Serve.Service.Rejected -> (c, d, r + 1, f)
       | Serve.Service.Failed -> (c, d, r, f + 1))
    (0, 0, 0, 0) rs

(* ------------------------------------------------------------------ *)
(* Queue                                                              *)
(* ------------------------------------------------------------------ *)

let test_queue_bound () =
  let q = Serve.Queue.create ~cap:2 () in
  Alcotest.(check bool) "1st admitted" true
    (Serve.Queue.push q ~priority:1 "a" = Serve.Queue.Admitted);
  Alcotest.(check bool) "2nd admitted" true
    (Serve.Queue.push q ~priority:1 "b" = Serve.Queue.Admitted);
  Alcotest.(check bool) "3rd same-priority rejected" true
    (Serve.Queue.push q ~priority:1 "c" = Serve.Queue.Rejected_full);
  Alcotest.(check int) "rejection does not grow the queue" 2
    (Serve.Queue.length q)

let test_queue_shed_priority () =
  let q = Serve.Queue.create ~cap:2 () in
  ignore (Serve.Queue.push q ~priority:1 "old-low");
  ignore (Serve.Queue.push q ~priority:1 "young-low");
  (match Serve.Queue.push q ~priority:5 "vip" with
   | Serve.Queue.Admitted_shedding v ->
     Alcotest.(check string) "the oldest lower-priority entry is shed"
       "old-low" v
   | _ -> Alcotest.fail "expected Admitted_shedding");
  (* a second vip finds only equal-or-higher priorities left of the low
     class' one survivor *)
  (match Serve.Queue.push q ~priority:5 "vip2" with
   | Serve.Queue.Admitted_shedding v ->
     Alcotest.(check string) "remaining low entry is shed next"
       "young-low" v
   | _ -> Alcotest.fail "expected Admitted_shedding");
  Alcotest.(check bool) "equal priority never sheds" true
    (Serve.Queue.push q ~priority:5 "vip3" = Serve.Queue.Rejected_full)

let test_queue_pop_order () =
  let q = Serve.Queue.create ~cap:8 () in
  ignore (Serve.Queue.push q ~priority:1 "low1");
  ignore (Serve.Queue.push q ~priority:9 "high1");
  ignore (Serve.Queue.push q ~priority:1 "low2");
  ignore (Serve.Queue.push q ~priority:9 "high2");
  Serve.Queue.set_draining q;
  let order = List.init 4 (fun _ -> Option.get (Serve.Queue.pop q)) in
  Alcotest.(check (list string))
    "highest priority first, FIFO within a class"
    [ "high1"; "high2"; "low1"; "low2" ] order;
  Alcotest.(check bool) "drained empty queue pops None" true
    (Serve.Queue.pop q = None)

let test_queue_forced_push_bypasses_bound () =
  let q = Serve.Queue.create ~cap:1 () in
  ignore (Serve.Queue.push q ~priority:1 "a");
  Serve.Queue.push_forced q ~priority:1 "retry";
  Alcotest.(check int) "forced push exceeds the cap" 2
    (Serve.Queue.length q)

let test_queue_forced_entries_never_shed () =
  let q = Serve.Queue.create ~cap:1 () in
  ignore (Serve.Queue.push q ~priority:1 "a");
  Serve.Queue.push_forced q ~priority:1 "retry";
  (* over cap with a low-priority forced entry present: the ordinary
     entry is the victim, never the already-admitted retry *)
  (match Serve.Queue.push q ~priority:5 "vip" with
   | Serve.Queue.Admitted_shedding v ->
     Alcotest.(check string) "the ordinary entry is shed, not the retry"
       "a" v
   | _ -> Alcotest.fail "expected Admitted_shedding");
  (* the exempt retry is the only strictly-lower-priority entry left:
     rather than shed it, the newcomer is rejected *)
  Alcotest.(check bool)
    "an exempt entry is never the victim; the push is rejected" true
    (Serve.Queue.push q ~priority:5 "vip2" = Serve.Queue.Rejected_full)

let test_queue_delayed_entry_waits () =
  let clock = ref 0.0 in
  let q =
    Serve.Queue.create
      ~now:(fun () -> !clock)
      ~sleep:(fun d -> clock := !clock +. Float.max d 1.0)
      ~cap:4 ()
  in
  Serve.Queue.push_forced q ~priority:9 ~delay:5.0 "retry";
  ignore (Serve.Queue.push q ~priority:1 "due");
  Alcotest.(check (option string))
    "a higher-priority delayed entry is skipped while not due"
    (Some "due") (Serve.Queue.pop q);
  Alcotest.(check (option string))
    "pop waits (via the injected sleep) until the retry is due"
    (Some "retry") (Serve.Queue.pop q);
  Alcotest.(check bool) "the wait advanced the clock past the delay" true
    (!clock >= 5.0)

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                    *)
(* ------------------------------------------------------------------ *)

let fake_clock start =
  let t = ref start in
  ((fun () -> !t), fun d -> t := !t +. d)

let test_breaker_opens_at_threshold () =
  let now, _ = fake_clock 0.0 in
  let b = Serve.Breaker.create ~now ~threshold:3 ~cooldown:10.0 () in
  Alcotest.(check bool) "closed admits" true
    (Serve.Breaker.acquire b "app" = `Proceed);
  Alcotest.(check bool) "1st failure does not open" false
    (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "2nd failure does not open" false
    (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "3rd consecutive failure opens" true
    (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "open fails fast" true
    (Serve.Breaker.acquire b "app" = `Fast_fail);
  Alcotest.(check bool) "other keys are unaffected" true
    (Serve.Breaker.acquire b "other" = `Proceed)

let test_breaker_success_resets_count () =
  let now, _ = fake_clock 0.0 in
  let b = Serve.Breaker.create ~now ~threshold:3 ~cooldown:10.0 () in
  ignore (Serve.Breaker.failure b "app");
  ignore (Serve.Breaker.failure b "app");
  Serve.Breaker.success b "app";
  Alcotest.(check int) "success resets consecutive failures" 0
    (Serve.Breaker.consecutive_failures b "app");
  Alcotest.(check bool) "1st failure of the new streak stays closed" false
    (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "2nd failure of the new streak stays closed" false
    (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "3rd failure of the new streak opens" true
    (Serve.Breaker.failure b "app")

let test_breaker_half_open_probe_closes () =
  let now, advance = fake_clock 100.0 in
  let b = Serve.Breaker.create ~now ~threshold:2 ~cooldown:10.0 () in
  ignore (Serve.Breaker.failure b "app");
  ignore (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "open before cooldown" true
    (Serve.Breaker.acquire b "app" = `Fast_fail);
  advance 10.0;
  Alcotest.(check bool) "after cooldown one probe is admitted" true
    (Serve.Breaker.acquire b "app" = `Probe);
  Alcotest.(check bool) "while the probe is in flight others fail fast"
    true
    (Serve.Breaker.acquire b "app" = `Fast_fail);
  Serve.Breaker.success b "app";
  Alcotest.(check bool) "probe success closes the breaker" true
    (Serve.Breaker.state b "app" = Serve.Breaker.Closed);
  Alcotest.(check bool) "closed admits again" true
    (Serve.Breaker.acquire b "app" = `Proceed)

let test_breaker_half_open_failure_reopens () =
  let now, advance = fake_clock 0.0 in
  let transitions = ref [] in
  let b =
    Serve.Breaker.create ~now
      ~on_transition:(fun ~key:_ st ->
        transitions := Serve.Breaker.state_name st :: !transitions)
      ~threshold:2 ~cooldown:10.0 ()
  in
  ignore (Serve.Breaker.failure b "app");
  ignore (Serve.Breaker.failure b "app");
  advance 10.0;
  Alcotest.(check bool) "probe admitted" true
    (Serve.Breaker.acquire b "app" = `Probe);
  Alcotest.(check bool) "probe failure re-opens" true
    (Serve.Breaker.failure b "app");
  Alcotest.(check bool) "re-opened fails fast" true
    (Serve.Breaker.acquire b "app" = `Fast_fail);
  advance 10.0;
  Alcotest.(check bool) "a second cooldown admits another probe" true
    (Serve.Breaker.acquire b "app" = `Probe);
  Serve.Breaker.success b "app";
  Alcotest.(check (list string))
    "transition history closed->open->half-open->open->half-open->closed"
    [ "open"; "half-open"; "open"; "half-open"; "closed" ]
    (List.rev !transitions)

(* The half-open probe slot is owned by a job id: the probe's own retry
   (after a transient failure) is re-admitted instead of fast-failed, so
   the breaker can never wedge in half-open. *)
let test_breaker_probe_owner_readmitted () =
  let now, advance = fake_clock 0.0 in
  let b = Serve.Breaker.create ~now ~threshold:2 ~cooldown:10.0 () in
  ignore (Serve.Breaker.failure b "app");
  ignore (Serve.Breaker.failure b "app");
  advance 10.0;
  Alcotest.(check bool) "job p takes the probe slot" true
    (Serve.Breaker.acquire ~job:"p" b "app" = `Probe);
  Alcotest.(check bool) "another job still fails fast" true
    (Serve.Breaker.acquire ~job:"q" b "app" = `Fast_fail);
  Alcotest.(check bool) "p's retry reclaims its probe slot" true
    (Serve.Breaker.acquire ~job:"p" b "app" = `Probe);
  Alcotest.(check bool) "an ownerless acquire fails fast" true
    (Serve.Breaker.acquire b "app" = `Fast_fail);
  Serve.Breaker.success b "app";
  Alcotest.(check bool) "the retried probe's success closes" true
    (Serve.Breaker.state b "app" = Serve.Breaker.Closed)

(* ------------------------------------------------------------------ *)
(* Retry schedule determinism                                         *)
(* ------------------------------------------------------------------ *)

let test_backoff_deterministic () =
  let cfg = { (service_config ()) with Serve.Service.seed = 13 } in
  let schedule id =
    List.init 4 (fun i ->
        Serve.Service.backoff_delay cfg ~id ~attempt:(i + 1))
  in
  Alcotest.(check (list (float 0.0)))
    "identical (seed, id, attempt) gives an identical schedule"
    (schedule "job-1") (schedule "job-1");
  Alcotest.(check bool) "different jobs get different jitter" true
    (schedule "job-1" <> schedule "job-2");
  let cfg' = { cfg with Serve.Service.seed = 14 } in
  Alcotest.(check bool) "a different seed changes the schedule" true
    (schedule "job-1"
     <> List.init 4 (fun i ->
            Serve.Service.backoff_delay cfg' ~id:"job-1" ~attempt:(i + 1)));
  List.iteri
    (fun i d ->
       Alcotest.(check bool)
         (Printf.sprintf "attempt %d delay within [base/2, max]" (i + 1))
         true
         (d >= cfg.Serve.Service.retry_base *. 0.5
          && d <= cfg.Serve.Service.retry_max_delay))
    (schedule "job-1")

(* The schedule actually executed by the service: which jobs retried, at
   which attempts, with which backoff delays (read back from the recorded
   [Job_retried] diagnostics — the delay no longer blocks a worker, it is
   carried by the re-queued entry). Must be identical across runs and
   across worker-pool sizes. *)
let executed_schedule ~workers ~seed n =
  Fault.reset ();
  let ids = List.init n (fun i -> Printf.sprintf "flaky-%d" i) in
  List.iter
    (fun id ->
       Fault.arm ~once:true ~action:Fault.Fail_transient (Fault.site_job id)
         ~after:1)
    ids;
  let t =
    Serve.Service.create ~config:(service_config ~workers ~seed ()) ()
  in
  let col = Collector.create () in
  List.iter
    (fun id ->
       Serve.Service.submit t
         (Serve.Service.request ~source:two_flows id)
         ~respond:(Collector.respond col))
    ids;
  let rs = Collector.await col n in
  Serve.Service.await_drained t;
  Fault.reset ();
  let retried =
    List.map
      (fun (r : Serve.Service.response) ->
         (r.Serve.Service.rp_id, r.Serve.Service.rp_attempts,
          r.Serve.Service.rp_status))
      rs
    |> List.sort compare
  in
  let delays =
    List.filter_map
      (function
        | Diagnostics.Job_retried { delay; _ } -> Some delay
        | _ -> None)
      (Serve.Service.events t)
  in
  (retried, List.sort compare delays)

let test_retry_schedule_reproducible () =
  let a = executed_schedule ~workers:1 ~seed:21 6 in
  let b = executed_schedule ~workers:1 ~seed:21 6 in
  Alcotest.(check bool) "same seed, same run" true (a = b);
  let c = executed_schedule ~workers:4 ~seed:21 6 in
  Alcotest.(check bool) "identical with a 4-domain worker pool" true
    (a = c);
  let retried, delays = a in
  List.iter
    (fun (id, attempts, status) ->
       Alcotest.(check int) (id ^ " ran exactly twice") 2 attempts;
       Alcotest.(check bool) (id ^ " completed after its retry") true
         (status = Serve.Service.Completed))
    retried;
  (* each executed delay is the pure backoff function's value *)
  let cfg = service_config ~seed:21 () in
  let expected =
    List.map
      (fun i ->
         Serve.Service.backoff_delay cfg
           ~id:(Printf.sprintf "flaky-%d" i) ~attempt:1)
      [ 0; 1; 2; 3; 4; 5 ]
    |> List.sort compare
  in
  Alcotest.(check (list (float 0.0)))
    "executed delays match the pure schedule" expected delays

(* ------------------------------------------------------------------ *)
(* Chaos: the zero-lost-jobs invariant                                *)
(* ------------------------------------------------------------------ *)

(* >= 100 jobs with fault injections armed: valid jobs, stalled jobs,
   permanently crashing jobs against one app (tripping its breaker),
   transiently flaky jobs, and over-deadline jobs. Every job must reach
   exactly one terminal state, deterministically at the fixed seed. *)
let test_chaos_no_lost_jobs () =
  Fault.reset ();
  let workers = 4 and threshold = 5 in
  let valid = List.init 45 (fun i -> Printf.sprintf "valid-%d" i) in
  let stalled = List.init 5 (fun i -> Printf.sprintf "stalled-%d" i) in
  let crashers = List.init 15 (fun i -> Printf.sprintf "crash-%d" i) in
  let flaky = List.init 15 (fun i -> Printf.sprintf "flaky-%d" i) in
  let late = List.init 20 (fun i -> Printf.sprintf "late-%d" i) in
  List.iter
    (fun id ->
       Fault.arm ~once:true ~action:(Fault.Stall 0.01) (Fault.site_job id)
         ~after:1)
    stalled;
  List.iter
    (fun id ->
       (* every execution fails permanently: these trip the breaker *)
       Fault.arm ~once:false ~action:Fault.Fail (Fault.site_job id)
         ~after:1)
    crashers;
  List.iter
    (fun id ->
       Fault.arm ~once:true ~action:Fault.Fail_transient (Fault.site_job id)
         ~after:1)
    flaky;
  (* triage fault sites are global (not per-job): whichever job's pre-filter
     run ticks them third and fifth degrades to the unfiltered pipeline and
     still terminates — a crashing triage must never fail a job *)
  Fault.arm ~once:true Fault.site_triage_infer ~after:3;
  Fault.arm ~once:true Fault.site_triage_filter ~after:5;
  let t =
    Serve.Service.create
      ~config:
        (service_config ~workers ~breaker_threshold:threshold ~seed:7 ())
      ()
  in
  let col = Collector.create () in
  let submit ?app ?source ?deadline id =
    Serve.Service.submit t
      (Serve.Service.request ?app ?source ?deadline id)
      ~respond:(Collector.respond col)
  in
  (* interleave the classes so every worker sees a mix *)
  List.iteri
    (fun i id ->
       submit ~source:two_flows id;
       (match List.nth_opt stalled (i / 9) with
        | Some s when i mod 9 = 0 -> submit ~source:two_flows s
        | _ -> ());
       if i < 15 then submit ~app:"BlueBlog" (List.nth crashers i);
       if i < 15 then submit ~source:two_flows (List.nth flaky i);
       if i < 20 then
         submit ~source:two_flows ~deadline:0.0 (List.nth late i))
    valid;
  let total = 45 + 5 + 15 + 15 + 20 in
  let rs = Collector.await col total in
  Serve.Service.await_drained t;
  Alcotest.(check bool) "both triage faults fired" true
    (Fault.fired Fault.site_triage_infer > 0
     && Fault.fired Fault.site_triage_filter > 0);
  Fault.reset ();
  (* exactly one terminal response per job *)
  Alcotest.(check int) "every job answered exactly once" total
    (List.length rs);
  let ids =
    List.sort_uniq String.compare
      (List.map (fun r -> r.Serve.Service.rp_id) rs)
  in
  Alcotest.(check int) "no duplicate terminal states" total
    (List.length ids);
  let completed, degraded, rejected, failed = status_counts rs in
  Alcotest.(check int) "all statuses are terminal" total
    (completed + degraded + rejected + failed);
  Alcotest.(check int) "nothing was rejected (queue far under cap)" 0
    rejected;
  (* per-class outcomes *)
  let status_of id =
    (Option.get (Collector.find col id)).Serve.Service.rp_status
  in
  (* a job whose pre-filter run absorbed one of the two armed triage
     faults terminates Degraded (unfiltered pipeline, full answer) — every
     other healthy job completes clean. Never a failure either way. *)
  let triage_degraded =
    List.filter
      (fun id -> status_of id = Serve.Service.Degraded)
      (valid @ stalled @ flaky)
  in
  Alcotest.(check bool)
    (Printf.sprintf "at most the two triage faults degraded a job (%d <= 2)"
       (List.length triage_degraded))
    true
    (List.length triage_degraded <= 2);
  List.iter
    (fun id ->
       Alcotest.(check bool) (id ^ " completed") true
         (match status_of id with
          | Serve.Service.Completed | Serve.Service.Degraded -> true
          | _ -> false))
    (valid @ stalled);
  List.iter
    (fun id ->
       let r = Option.get (Collector.find col id) in
       Alcotest.(check bool) (id ^ " completed after one retry") true
         (match r.Serve.Service.rp_status with
          | Serve.Service.Completed | Serve.Service.Degraded -> true
          | _ -> false);
       Alcotest.(check int) (id ^ " attempts") 2
         r.Serve.Service.rp_attempts)
    flaky;
  List.iter
    (fun id ->
       Alcotest.(check bool) (id ^ " failed terminally") true
         (status_of id = Serve.Service.Failed))
    crashers;
  List.iter
    (fun id ->
       Alcotest.(check bool) (id ^ " over-deadline is degraded or failed")
         true
         (match status_of id with
          | Serve.Service.Degraded | Serve.Service.Failed -> true
          | _ -> false))
    late;
  (* the breaker capped the crasher app's executions: at most threshold
     failures open it, plus at most one in-flight execution per worker
     that acquired before the transition *)
  let executed_crashers =
    List.filter
      (fun id ->
         (Option.get (Collector.find col id)).Serve.Service.rp_reason
         <> "breaker_open")
      crashers
  in
  Alcotest.(check bool)
    (Printf.sprintf "breaker capped crasher executions (%d <= %d)"
       (List.length executed_crashers)
       (threshold + workers))
    true
    (List.length executed_crashers <= threshold + workers);
  let h = Serve.Service.health t in
  Alcotest.(check bool) "the crasher app's breaker opened" true
    (h.Serve.Service.h_breaker_opens >= 1);
  Alcotest.(check (list string)) "it is the only open breaker"
    [ "BlueBlog" ] h.Serve.Service.h_open_breakers;
  (* counter partition invariants *)
  Alcotest.(check int) "submitted = admitted + rejected"
    h.Serve.Service.h_submitted
    (h.Serve.Service.h_admitted + h.Serve.Service.h_rejected_full
     + h.Serve.Service.h_rejected_draining);
  Alcotest.(check int) "admitted = completed + degraded + failed + shed"
    h.Serve.Service.h_admitted
    (h.Serve.Service.h_completed + h.Serve.Service.h_degraded
     + h.Serve.Service.h_failed + h.Serve.Service.h_shed);
  Alcotest.(check int) "flaky jobs retried exactly once each" 15
    h.Serve.Service.h_retries;
  Alcotest.(check bool) "no shedding, no queue_full: a clean drain" true
    (Serve.Service.clean_drain h)

(* ------------------------------------------------------------------ *)
(* Backpressure at the service level                                  *)
(* ------------------------------------------------------------------ *)

let test_service_shed_and_queue_full () =
  Fault.reset ();
  (* one worker, blocked on a stalling job, so the queue is controllable *)
  Fault.arm ~once:true ~action:(Fault.Stall 0.5)
    (Fault.site_job "blocker") ~after:1;
  let t =
    Serve.Service.create
      ~config:(service_config ~workers:1 ~queue_cap:2 ())
      ()
  in
  let col = Collector.create () in
  let submit ?(priority = 1) id =
    Serve.Service.submit t
      (Serve.Service.request ~source:two_flows ~priority id)
      ~respond:(Collector.respond col)
  in
  submit "blocker";
  (* wait until the worker has popped the blocker (queue empty again) *)
  let rec wait_empty n =
    if n = 0 then Alcotest.fail "blocker never started"
    else if (Serve.Service.health t).Serve.Service.h_queue_depth > 0 then begin
      Serve.Io.sleepf 0.005;
      wait_empty (n - 1)
    end
  in
  wait_empty 1000;
  submit ~priority:1 "low-1";
  submit ~priority:1 "low-2";
  (* cap reached: an equal-priority push is answered queue_full *)
  submit ~priority:1 "low-3";
  let r3 = Option.get (Collector.find col "low-3") in
  Alcotest.(check bool) "queue_full is an immediate rejection" true
    (r3.Serve.Service.rp_status = Serve.Service.Rejected);
  Alcotest.(check string) "with the queue_full reason" "queue_full"
    r3.Serve.Service.rp_reason;
  (* a higher-priority job sheds the oldest low-priority one instead *)
  submit ~priority:5 "vip";
  let shed = Option.get (Collector.find col "low-1") in
  Alcotest.(check string) "the shed victim is told why" "shed"
    shed.Serve.Service.rp_reason;
  Alcotest.(check bool) "shed response is terminal Rejected" true
    (shed.Serve.Service.rp_status = Serve.Service.Rejected);
  let rs = Collector.await col 5 in
  Serve.Service.await_drained t;
  Fault.reset ();
  let completed, _, rejected, _ = status_counts rs in
  Alcotest.(check int) "blocker, low-2 and vip completed" 3 completed;
  Alcotest.(check int) "low-1 (shed) and low-3 (full) rejected" 2 rejected;
  let h = Serve.Service.health t in
  Alcotest.(check int) "health counts the shed job" 1
    h.Serve.Service.h_shed;
  Alcotest.(check int) "health counts the queue_full rejection" 1
    h.Serve.Service.h_rejected_full;
  Alcotest.(check bool) "an overloaded run is not a clean drain" false
    (Serve.Service.clean_drain h)

(* ------------------------------------------------------------------ *)
(* Breaker integration: cooldown probe at the service level           *)
(* ------------------------------------------------------------------ *)

let test_service_breaker_recovers () =
  Fault.reset ();
  (* crash the app's first three executions, then let it heal; cooldown
     0 admits a half-open probe immediately after the breaker opens *)
  let t =
    Serve.Service.create
      ~config:
        (service_config ~workers:1 ~breaker_threshold:3
           ~breaker_cooldown:0.0 ())
      ()
  in
  let col = Collector.create () in
  let submit id =
    Serve.Service.submit t
      (Serve.Service.request ~app:"BlueBlog" ~scale:0.02 id)
      ~respond:(Collector.respond col)
  in
  let crash = [ "c1"; "c2"; "c3" ] in
  List.iter
    (fun id ->
       Fault.arm ~once:false ~action:Fault.Fail (Fault.site_job id)
         ~after:1)
    crash;
  List.iter submit crash;
  ignore (Collector.await col 3);
  let h = Serve.Service.health t in
  Alcotest.(check bool) "breaker opened after 3 terminal failures" true
    (h.Serve.Service.h_breaker_opens >= 1);
  (* healthy job for the same app: admitted as the half-open probe *)
  submit "probe";
  ignore (Collector.await col 4);
  let probe = Option.get (Collector.find col "probe") in
  Alcotest.(check bool) "the probe ran and completed" true
    (probe.Serve.Service.rp_status = Serve.Service.Completed);
  let h = Serve.Service.health t in
  Alcotest.(check (list string)) "its success closed the breaker" []
    h.Serve.Service.h_open_breakers;
  Serve.Service.await_drained t;
  Fault.reset ()

(* Regression: a half-open probe whose execution fails *transiently* is
   retried; its re-execution must be re-admitted as the probe (not
   fast-failed), and its eventual success must close the breaker. Before
   probe-slot ownership this wedged the key in half-open forever. *)
let test_service_probe_transient_retry_recovers () =
  Fault.reset ();
  let t =
    Serve.Service.create
      ~config:
        (service_config ~workers:1 ~breaker_threshold:2
           ~breaker_cooldown:0.0 ())
      ()
  in
  let col = Collector.create () in
  let submit id =
    Serve.Service.submit t
      (Serve.Service.request ~app:"BlueBlog" ~scale:0.02 id)
      ~respond:(Collector.respond col)
  in
  let crash = [ "c1"; "c2" ] in
  List.iter
    (fun id ->
       Fault.arm ~once:false ~action:Fault.Fail (Fault.site_job id)
         ~after:1)
    crash;
  List.iter submit crash;
  ignore (Collector.await col 2);
  Alcotest.(check (list string)) "breaker open before the probe"
    [ "BlueBlog" ]
    (Serve.Service.health t).Serve.Service.h_open_breakers;
  (* the probe's first execution fails transiently, its retry succeeds *)
  Fault.arm ~once:true ~action:Fault.Fail_transient
    (Fault.site_job "probe") ~after:1;
  submit "probe";
  ignore (Collector.await col 3);
  let probe = Option.get (Collector.find col "probe") in
  Alcotest.(check bool) "the retried probe completed" true
    (probe.Serve.Service.rp_status = Serve.Service.Completed);
  Alcotest.(check int) "after exactly two executions" 2
    probe.Serve.Service.rp_attempts;
  Alcotest.(check (list string)) "and its success closed the breaker" []
    (Serve.Service.health t).Serve.Service.h_open_breakers;
  (* the key keeps working: no wedged half-open fast-fails *)
  submit "after";
  ignore (Collector.await col 4);
  Alcotest.(check bool) "subsequent jobs for the key run normally" true
    ((Option.get (Collector.find col "after")).Serve.Service.rp_status
     = Serve.Service.Completed);
  Serve.Service.await_drained t;
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* Memory watchdog                                                    *)
(* ------------------------------------------------------------------ *)

let test_watchdog_levels () =
  let w = Serve.Watchdog.create ~max_level:3 ~soft_limit_mb:(Some 0) () in
  let events = ref [] in
  let on_event d = events := d :: !events in
  (* the heap is always over a 0 MB soft limit: one step per sample *)
  Alcotest.(check int) "first sample raises to 1" 1
    (Serve.Watchdog.sample ~on_event w);
  Alcotest.(check int) "second sample raises to 2" 2
    (Serve.Watchdog.sample ~on_event w);
  ignore (Serve.Watchdog.sample ~on_event w);
  Alcotest.(check int) "capped at max_level" 3
    (Serve.Watchdog.sample ~on_event w);
  Alcotest.(check int) "three level-change events" 3
    (List.length
       (List.filter
          (function
            | Diagnostics.Resource_pressure _ -> true
            | _ -> false)
          !events));
  let disabled = Serve.Watchdog.create ~soft_limit_mb:None () in
  Alcotest.(check int) "no soft limit, no pressure" 0
    (Serve.Watchdog.sample disabled)

(* A scripted heap profile drives every transition of the level machine:
   up at [mb >= limit], hold inside the hysteresis band
   [3/4·limit, limit), down below it, full recovery to 0. *)
let test_watchdog_hysteresis () =
  let heap = ref 0 in
  let w =
    Serve.Watchdog.create ~max_level:4 ~heap:(fun () -> !heap)
      ~soft_limit_mb:(Some 100) ()
  in
  let events = ref 0 in
  let on_event (_ : Diagnostics.degradation) = incr events in
  let sample mb = heap := mb; Serve.Watchdog.sample ~on_event w in
  Alcotest.(check int) "under the limit: stays 0" 0 (sample 50);
  Alcotest.(check int) "at the limit: up to 1" 1 (sample 100);
  Alcotest.(check int) "over the limit: up to 2" 2 (sample 140);
  Alcotest.(check int) "hysteresis band holds the level" 2 (sample 90);
  Alcotest.(check int) "band lower edge still holds" 2 (sample 75);
  Alcotest.(check int) "below three quarters: down to 1" 1 (sample 74);
  Alcotest.(check int) "recovery continues: down to 0" 0 (sample 10);
  Alcotest.(check int) "and stays recovered" 0 (sample 10);
  Alcotest.(check int) "one level change per sample, even from far over"
    1 (sample 10_000);
  Alcotest.(check int) "level reads back" 1 (Serve.Watchdog.level w);
  Alcotest.(check int) "five level-change events in all" 5 !events

let test_watchdog_degrades_config () =
  let base = Config.preset ~scale:1.0 Config.Hybrid_unbounded in
  let s0, c0 = Serve.Watchdog.degrade_config ~scale:1.0 base 0 in
  Alcotest.(check bool) "level 0 keeps the config" true
    (s0 = 1.0 && c0 = base);
  let _, c2 = Serve.Watchdog.degrade_config ~scale:1.0 base 2 in
  Alcotest.(check bool) "level 2 is a strictly different rung" true
    (c2 <> base);
  (* far past the ladder's end: clamps to its strictest rung *)
  let s_last, c_last = Serve.Watchdog.degrade_config ~scale:1.0 base 99 in
  let ladder = Config.degradation_ladder ~scale:1.0 base in
  Alcotest.(check bool) "overflow clamps to the last rung" true
    ((s_last, c_last) = List.nth ladder (List.length ladder - 1))

let test_service_degrades_under_pressure () =
  Fault.reset ();
  (* soft limit 0: every job runs at pressure > 0 and must say so. The
     level climbs one rung per sampled job, so with one worker the later
     jobs bottom out on rung zero and answer with a triage verdict. *)
  let t =
    Serve.Service.create
      ~config:(service_config ~workers:1 ~mem_soft_limit_mb:0 ())
      ()
  in
  let col = Collector.create () in
  let ids = List.init 8 (fun i -> Printf.sprintf "p%d" (i + 1)) in
  List.iter
    (fun id ->
       Serve.Service.submit t
         (Serve.Service.request ~source:two_flows id)
         ~respond:(Collector.respond col))
    ids;
  let rs = Collector.await col (List.length ids) in
  Serve.Service.await_drained t;
  List.iter
    (fun (r : Serve.Service.response) ->
       Alcotest.(check bool)
         (r.Serve.Service.rp_id ^ " degraded under memory pressure") true
         (r.Serve.Service.rp_status = Serve.Service.Degraded))
    rs;
  (* pressure bottoms out on rung zero: type-only answers, never a
     failure — the zero-lost-jobs floor under memory exhaustion *)
  let type_only =
    List.filter
      (fun (r : Serve.Service.response) ->
         r.Serve.Service.rp_verdict = Some "type_only")
      rs
  in
  Alcotest.(check bool) "later jobs answered from rung zero" true
    (type_only <> []);
  List.iter
    (fun (r : Serve.Service.response) ->
       Alcotest.(check string)
         (r.Serve.Service.rp_id ^ " reason names the triage floor")
         "type_only" r.Serve.Service.rp_reason)
    type_only;
  let h = Serve.Service.health t in
  Alcotest.(check bool) "health reports the pressure level" true
    (h.Serve.Service.h_pressure > 0);
  Alcotest.(check string) "health names the triage rung" "triage"
    h.Serve.Service.h_rung

(* ------------------------------------------------------------------ *)
(* Graceful drain on SIGTERM                                          *)
(* ------------------------------------------------------------------ *)

let test_sigterm_drains_without_losing_jobs () =
  Fault.reset ();
  let old_term = Sys.signal Sys.sigterm Sys.Signal_ignore in
  let old_int = Sys.signal Sys.sigint Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    (fun () ->
       let t =
         Serve.Service.create ~config:(service_config ~workers:2 ()) ()
       in
       Serve.Service.install_signals t;
       let col = Collector.create () in
       let accepted = List.init 40 (fun i -> Printf.sprintf "job-%d" i) in
       List.iter
         (fun id ->
            Serve.Service.submit t
              (Serve.Service.request ~source:two_flows id)
              ~respond:(Collector.respond col))
         accepted;
       (* SIGTERM mid-load; wait until the handler has run *)
       Unix.kill (Unix.getpid ()) Sys.sigterm;
       let rec wait_flag n =
         if n = 0 then Alcotest.fail "signal flag never set"
         else if not (Serve.Service.signal_pending t) then begin
           Serve.Io.sleepf 0.005;
           wait_flag (n - 1)
         end
       in
       wait_flag 1000;
       (* post-signal submissions are refused, with a terminal answer *)
       let refused = [ "late-1"; "late-2"; "late-3" ] in
       List.iter
         (fun id ->
            Serve.Service.submit t
              (Serve.Service.request ~source:two_flows id)
              ~respond:(Collector.respond col))
         refused;
       Serve.Service.await_drained t;
       let rs = Collector.await col (40 + 3) in
       Alcotest.(check int) "every submission answered" 43
         (List.length rs);
       List.iter
         (fun id ->
            let r = Option.get (Collector.find col id) in
            Alcotest.(check bool) (id ^ " accepted job not lost to drain")
              true
              (r.Serve.Service.rp_status <> Serve.Service.Rejected))
         accepted;
       List.iter
         (fun id ->
            let r = Option.get (Collector.find col id) in
            Alcotest.(check string) (id ^ " refused while draining")
              "draining" r.Serve.Service.rp_reason)
         refused;
       let h = Serve.Service.health t in
       Alcotest.(check int) "drain-time rejections counted" 3
         h.Serve.Service.h_rejected_draining;
       Alcotest.(check int) "all accepted jobs reached terminal states" 40
         (h.Serve.Service.h_completed + h.Serve.Service.h_degraded
          + h.Serve.Service.h_failed);
       Alcotest.(check bool) "refusals under drain are still clean" true
         (Serve.Service.clean_drain h))

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_parser () =
  let ok s = Result.get_ok (Serve.Json.parse s) in
  Alcotest.(check bool) "object with escapes" true
    (Serve.Json.str_member "k"
       (ok {|{"k":"a\"b\\c\ndA"}|})
     = Some "a\"b\\c\ndA");
  Alcotest.(check bool) "numbers" true
    (Serve.Json.num_member "n" (ok {|{"n":-12.5e1}|}) = Some (-125.0));
  Alcotest.(check bool) "nested arrays survive a round-trip" true
    (let v = ok {|{"a":[1,[true,null],"x"],"b":{}}|} in
     Serve.Json.parse (Serve.Json.to_string v) = Ok v);
  Alcotest.(check bool) "trailing garbage is an error" true
    (Result.is_error (Serve.Json.parse "{} junk"));
  Alcotest.(check bool) "truncated input is an error" true
    (Result.is_error (Serve.Json.parse {|{"a":|}));
  Alcotest.(check bool) "control chars are escaped on output" true
    (Serve.Json.to_string (Serve.Json.Str "a\nb\tc")
     = {|"a\nb\tc"|});
  Alcotest.(check bool) "surrogate pair decodes to 4-byte UTF-8" true
    (Serve.Json.str_member "k" (ok {|{"k":"\ud83d\ude00"}|})
     = Some "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "BMP escape still decodes to 3-byte UTF-8" true
    (Serve.Json.str_member "k" (ok {|{"k":"\u20ac"}|})
     = Some "\xe2\x82\xac");
  Alcotest.(check bool) "lone high surrogate is an error" true
    (Result.is_error (Serve.Json.parse {|{"k":"\ud800x"}|}));
  Alcotest.(check bool) "lone low surrogate is an error" true
    (Result.is_error (Serve.Json.parse {|{"k":"\udc00"}|}))

let test_request_decoding () =
  let decode s =
    Serve.Service.request_of_json (Result.get_ok (Serve.Json.parse s))
  in
  (match
     decode
       {|{"id":"r1","app":"Friki","scale":0.1,"deadline":2.5,
          "priority":3,"algorithm":"ci"}|}
   with
   | Ok rq ->
     Alcotest.(check string) "id" "r1" rq.Serve.Service.rq_id;
     Alcotest.(check bool) "app" true
       (rq.Serve.Service.rq_app = Some "Friki");
     Alcotest.(check (float 0.0)) "scale" 0.1 rq.Serve.Service.rq_scale;
     Alcotest.(check bool) "deadline" true
       (rq.Serve.Service.rq_deadline = Some 2.5);
     Alcotest.(check int) "priority" 3 rq.Serve.Service.rq_priority;
     Alcotest.(check bool) "algorithm" true
       (rq.Serve.Service.rq_algorithm = Config.Ci_thin_slicing)
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "missing id is an error" true
    (Result.is_error (decode {|{"app":"Friki"}|}));
  Alcotest.(check bool) "missing app and source is an error" true
    (Result.is_error (decode {|{"id":"x"}|}));
  Alcotest.(check bool) "unknown algorithm is an error" true
    (Result.is_error (decode {|{"id":"x","app":"a","algorithm":"magic"}|}));
  (* response and health lines are themselves valid JSON *)
  let r =
    { Serve.Service.rp_id = "a,b\"c"; rp_status = Serve.Service.Completed;
      rp_reason = ""; rp_issues = 2; rp_attempts = 1; rp_degradations = 0;
      rp_seconds = 0.25; rp_verdict = None; rp_mismatched = None }
  in
  (match Serve.Json.parse (Serve.Service.response_json r) with
   | Ok j ->
     Alcotest.(check bool) "response JSON round-trips awkward ids" true
       (Serve.Json.str_member "id" j = Some "a,b\"c");
     Alcotest.(check bool) "status serialized" true
       (Serve.Json.str_member "status" j = Some "completed")
   | Error e -> Alcotest.fail ("response_json: " ^ e))

(* ------------------------------------------------------------------ *)
(* EINTR helper                                                       *)
(* ------------------------------------------------------------------ *)

let test_retry_eintr () =
  let calls = ref 0 in
  let v =
    Serve.Io.retry_eintr (fun () ->
        incr calls;
        if !calls < 3 then
          raise (Unix.Unix_error (Unix.EINTR, "read", ""))
        else 42)
  in
  Alcotest.(check int) "EINTR retried until success" 42 v;
  Alcotest.(check int) "exactly the interrupted calls repeated" 3 !calls;
  Alcotest.check_raises "other Unix errors propagate"
    (Unix.Unix_error (Unix.EBADF, "read", ""))
    (fun () ->
       Serve.Io.retry_eintr (fun () ->
           raise (Unix.Unix_error (Unix.EBADF, "read", ""))))

let test_fault_taxonomy () =
  Alcotest.(check string) "injected transient faults are transient"
    "transient"
    (Fault.severity_name (Fault.classify (Fault.Injected_transient "x")));
  Alcotest.(check string) "EINTR is transient" "transient"
    (Fault.severity_name
       (Fault.classify (Unix.Unix_error (Unix.EINTR, "read", ""))));
  Alcotest.(check string) "EPIPE (crashed cluster peer) is transient"
    "transient"
    (Fault.severity_name
       (Fault.classify (Unix.Unix_error (Unix.EPIPE, "worker", ""))));
  Alcotest.(check string) "injected permanent faults are permanent"
    "permanent"
    (Fault.severity_name (Fault.classify (Fault.Injected "x")));
  Alcotest.(check string) "analysis exceptions are permanent" "permanent"
    (Fault.severity_name (Fault.classify (Failure "boom")))

(* A peer that vanished mid-connection must cost one diagnostic, not the
   process: the writer reports the first EPIPE through [on_error] and
   swallows everything after. *)
let test_writer_broken_pipe () =
  Serve.Io.ignore_sigpipe ();
  let r, w = Unix.pipe () in
  Unix.close r;
  let errors = ref [] in
  let write =
    Serve.Io.make_writer ~on_error:(fun e -> errors := e :: !errors) w
  in
  write "first line after the peer died";
  Alcotest.(check bool) "EPIPE reported once, not raised" true
    (!errors = [ Unix.EPIPE ]);
  write "second line";
  write "third line";
  Alcotest.(check int) "later writes dropped silently" 1
    (List.length !errors);
  Unix.close w

let test_stale_socket_handling () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "taj-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* a server that died without unlinking leaves a socket file nobody
     answers on: binding must reclaim it *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  Alcotest.(check bool) "socket file left behind" true
    (Sys.file_exists path);
  (match Serve.Io.bind_unix_socket path with
   | Ok fd ->
     (* now play the live server: listen, and check a second bind is
        refused instead of stealing the path *)
     Unix.listen fd 8;
     (match Serve.Io.bind_unix_socket path with
      | Error `Live -> ()
      | Ok fd' ->
        Unix.close fd';
        Alcotest.fail "bound over a live server");
     Unix.close fd
   | Error `Live -> Alcotest.fail "stale socket reported live");
  (try Unix.unlink path with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "queue: bound rejects explicitly" `Quick
      test_queue_bound;
    Alcotest.test_case "queue: priority shedding" `Quick
      test_queue_shed_priority;
    Alcotest.test_case "queue: pop order" `Quick test_queue_pop_order;
    Alcotest.test_case "queue: forced push for retries" `Quick
      test_queue_forced_push_bypasses_bound;
    Alcotest.test_case "queue: forced entries never shed" `Quick
      test_queue_forced_entries_never_shed;
    Alcotest.test_case "queue: delayed retry entries wait" `Quick
      test_queue_delayed_entry_waits;
    Alcotest.test_case "breaker: opens at threshold" `Quick
      test_breaker_opens_at_threshold;
    Alcotest.test_case "breaker: success resets the streak" `Quick
      test_breaker_success_resets_count;
    Alcotest.test_case "breaker: half-open probe closes" `Quick
      test_breaker_half_open_probe_closes;
    Alcotest.test_case "breaker: half-open failure re-opens" `Quick
      test_breaker_half_open_failure_reopens;
    Alcotest.test_case "breaker: probe owner re-admitted" `Quick
      test_breaker_probe_owner_readmitted;
    Alcotest.test_case "backoff: pure deterministic schedule" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff: executed schedule reproducible" `Slow
      test_retry_schedule_reproducible;
    Alcotest.test_case "chaos: no job is ever lost" `Slow
      test_chaos_no_lost_jobs;
    Alcotest.test_case "backpressure: shed and queue_full" `Slow
      test_service_shed_and_queue_full;
    Alcotest.test_case "breaker: service-level recovery probe" `Slow
      test_service_breaker_recovers;
    Alcotest.test_case "breaker: transient probe failure recovers" `Slow
      test_service_probe_transient_retry_recovers;
    Alcotest.test_case "watchdog: pressure levels" `Quick
      test_watchdog_levels;
    Alcotest.test_case "watchdog: hysteresis and recovery" `Quick
      test_watchdog_hysteresis;
    Alcotest.test_case "watchdog: ladder mapping" `Quick
      test_watchdog_degrades_config;
    Alcotest.test_case "watchdog: jobs degrade under pressure" `Slow
      test_service_degrades_under_pressure;
    Alcotest.test_case "drain: SIGTERM loses no accepted job" `Slow
      test_sigterm_drains_without_losing_jobs;
    Alcotest.test_case "protocol: JSON parser" `Quick test_json_parser;
    Alcotest.test_case "protocol: request decoding" `Quick
      test_request_decoding;
    Alcotest.test_case "io: retry_eintr" `Quick test_retry_eintr;
    Alcotest.test_case "faults: retry taxonomy" `Quick
      test_fault_taxonomy;
    Alcotest.test_case "io: broken pipe contained" `Quick
      test_writer_broken_pipe;
    Alcotest.test_case "io: stale socket reclaimed, live refused" `Quick
      test_stale_socket_handling ]
