(* Separate runner: the cluster coordinator forks, and OCaml 5 refuses
   Unix.fork in a process that has ever spawned a domain — which the main
   runner's suites do. This executable stays domain-free. *)
let () = Alcotest.run "taj-cluster" [ ("cluster", Test_cluster.suite) ]
