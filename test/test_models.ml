(* Unit tests for the code-model layer: the model JDK itself, the
   constant-key dictionary encoding, native transfer summaries, the
   reflection evaluator, and IR well-formedness after all rewrites. *)

open Jir

let test_jdk_parses () =
  let units = Models.Jdklib.units () in
  Alcotest.(check int) "all units parse" (List.length Models.Jdklib.sources)
    (List.length units);
  (* the model JDK declares the essential classes *)
  let prog = Program.create () in
  List.iter (Lower.declare prog ~library:true) units;
  List.iter
    (fun cls ->
       Alcotest.(check bool) (cls ^ " declared") true
         (Classtable.mem prog.Program.table cls))
    [ "Object"; "String"; "StringBuffer"; "HashMap"; "ArrayList";
      "HttpServletRequest"; "HttpServletResponse"; "HttpServlet";
      "PrintWriter"; "Statement"; "Connection"; "Throwable"; "Exception";
      "Class"; "Method"; "Thread"; "Action"; "ActionForm"; "InitialContext";
      "Runtime"; "URLEncoder"; "Sanitizer" ]

let test_jdk_lowers_and_verifies () =
  let prog = Program.create () in
  let units = Models.Jdklib.units () in
  Lower.load prog (List.map (fun u -> (true, u)) units);
  Ssa.convert_program prog;
  Alcotest.(check (list string)) "no violations" []
    (List.map (Fmt.str "%a" Verify.pp_violation) (Verify.check_program prog))

(* ---- dictionary model ---- *)

let mk_call ?(cls = "HashMap") ?(name = "put") args ret =
  { Tac.ret;
    kind = Tac.Virtual;
    target = { Tac.rclass = cls; rname = name;
               rarity = List.length args };
    args;
    site = 0 }

let test_dict_classify () =
  let const_of v = if v = 5 then Some "key" else None in
  (match Models.Dict_model.classify ~const_of (mk_call [ 1; 5; 2 ] (Some 9)) with
   | Some (Models.Dict_model.Dict_put
             { recv = 1; key = Models.Dict_model.Const_key "key"; value = 2 }) ->
     ()
   | _ -> Alcotest.fail "constant put misclassified");
  (match
     Models.Dict_model.classify ~const_of
       (mk_call ~name:"get" [ 1; 7 ] (Some 9))
   with
   | Some (Models.Dict_model.Dict_get
             { dst = 9; recv = 1; key = Models.Dict_model.Unknown_key }) -> ()
   | _ -> Alcotest.fail "unknown get misclassified");
  (* non-dictionary class is left alone *)
  Alcotest.(check bool) "non-dict class ignored" true
    (Models.Dict_model.classify ~const_of
       (mk_call ~cls:"ArrayList" ~name:"get" [ 1; 5 ] (Some 9))
     = None)

let field_names fields = List.map (fun f -> f.Tac.fname) fields

let test_dict_field_encoding () =
  Alcotest.(check (list string)) "const put"
    [ "$key_k"; "$all" ]
    (field_names (Models.Dict_model.put_fields (Models.Dict_model.Const_key "k")));
  Alcotest.(check (list string)) "unknown put" [ "$any" ]
    (field_names (Models.Dict_model.put_fields Models.Dict_model.Unknown_key));
  Alcotest.(check (list string)) "const get"
    [ "$key_k"; "$any" ]
    (field_names (Models.Dict_model.get_fields (Models.Dict_model.Const_key "k")));
  Alcotest.(check (list string)) "unknown get" [ "$any"; "$all" ]
    (field_names (Models.Dict_model.get_fields Models.Dict_model.Unknown_key));
  (* soundness: any get must overlap any put *)
  let overlap g p =
    List.exists (fun f -> List.mem f (field_names p)) (field_names g)
  in
  List.iter
    (fun gk ->
       List.iter
         (fun pk ->
            let must_overlap =
              match gk, pk with
              | Models.Dict_model.Const_key a, Models.Dict_model.Const_key b ->
                String.equal a b
              | _ -> true
            in
            Alcotest.(check bool) "overlap iff may-alias" must_overlap
              (overlap (Models.Dict_model.get_fields gk)
                 (Models.Dict_model.put_fields pk)))
         [ Models.Dict_model.Const_key "a"; Models.Dict_model.Const_key "b";
           Models.Dict_model.Unknown_key ])
    [ Models.Dict_model.Const_key "a"; Models.Dict_model.Const_key "b";
      Models.Dict_model.Unknown_key ]

(* ---- natives ---- *)

let test_native_summaries () =
  let default = Models.Natives.summary ~meth_id:"X.y/2" ~arity:2 ~has_ret:true in
  Alcotest.(check int) "default arity" 2 (List.length default);
  Alcotest.(check bool) "default targets ret" true
    (List.for_all (fun t -> t.Models.Natives.t_to = Models.Natives.Ret) default);
  let arraycopy =
    Models.Natives.summary ~meth_id:"System.arraycopy/5" ~arity:5 ~has_ret:false
  in
  (match arraycopy with
   | [ { Models.Natives.t_from = 0; t_to = Models.Natives.Param 2 } ] -> ()
   | _ -> Alcotest.fail "arraycopy summary wrong");
  Alcotest.(check (list int)) "Math.abs transfers nothing" []
    (List.map (fun t -> t.Models.Natives.t_from)
       (Models.Natives.summary ~meth_id:"Math.abs/1" ~arity:1 ~has_ret:true));
  Alcotest.(check int) "void default empty" 0
    (List.length (Models.Natives.summary ~meth_id:"X.z/3" ~arity:3 ~has_ret:false))

(* ---- reflection evaluator ---- *)

let eval_in_method src meth_id f =
  let prog = Program.create () in
  let units =
    (true, Models.Jdklib.units () |> List.concat)
    :: [ (false, Parser.parse src) ]
  in
  Lower.load prog units;
  Ssa.convert_program prog;
  match Program.find_method prog meth_id with
  | Some m -> f (Models.Reflection.make_evaluator m) m
  | None -> Alcotest.failf "method %s not found" meth_id

let test_reflection_eval () =
  eval_in_method
    {|class R {
        void f() {
          Class k = Class.forName("R");
          Method[] ms = k.getMethods();
          Method m = ms[0];
          Method named = k.getMethod("f");
        }
      }|}
    "R.f/1"
    (fun ev m ->
       (* walk the registers and collect the abstract values we find *)
       let found = Hashtbl.create 8 in
       for v = 0 to m.Tac.m_nvars - 1 do
         match Models.Reflection.eval ev v with
         | Models.Reflection.Class_obj c -> Hashtbl.replace found ("class:" ^ c) ()
         | Models.Reflection.Methods_of c ->
           Hashtbl.replace found ("methods:" ^ c) ()
         | Models.Reflection.Method_any c ->
           Hashtbl.replace found ("any:" ^ c) ()
         | Models.Reflection.Method_named (c, n) ->
           Hashtbl.replace found ("named:" ^ c ^ "." ^ n) ()
         | _ -> ()
       done;
       List.iter
         (fun key ->
            Alcotest.(check bool) key true (Hashtbl.mem found key))
         [ "class:R"; "methods:R"; "any:R"; "named:R.f" ])

let test_reflection_join () =
  let open Models.Reflection in
  Alcotest.(check bool) "null is bottom" true (join Null (Str "x") = Str "x");
  Alcotest.(check bool) "join refl" true (join (Str "x") (Str "x") = Str "x");
  Alcotest.(check bool) "conflict is top" true (join (Str "x") (Str "y") = Top);
  Alcotest.(check bool) "top absorbs" true (join Top Null = Top)

(* ---- whole-pipeline IR validity after rewrites ---- *)

let test_rewrites_preserve_wellformedness () =
  let g = Workloads.Apps.generate ~scale:0.03 (Option.get (Workloads.Apps.find "SBM")) in
  let loaded = Core.Taj.load (Workloads.Codegen.to_input g) in
  Alcotest.(check (list string)) "no violations after all rewrites" []
    (List.map (Fmt.str "%a" Verify.pp_violation)
       (Verify.check_program loaded.Core.Taj.program))

let suite =
  [ Alcotest.test_case "jdk parses" `Quick test_jdk_parses;
    Alcotest.test_case "jdk lowers and verifies" `Quick test_jdk_lowers_and_verifies;
    Alcotest.test_case "dict classify" `Quick test_dict_classify;
    Alcotest.test_case "dict field encoding" `Quick test_dict_field_encoding;
    Alcotest.test_case "native summaries" `Quick test_native_summaries;
    Alcotest.test_case "reflection eval" `Quick test_reflection_eval;
    Alcotest.test_case "reflection join" `Quick test_reflection_join;
    Alcotest.test_case "rewrites preserve wellformedness" `Quick
      test_rewrites_preserve_wellformedness ]
