(* Tests for the string-context diagnostics (§9 future-work extension). *)

open Core

let flows_of srcs =
  let loaded =
    Taj.load { Taj.name = "sc"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> (c.Taj.builder, c.Taj.report.Report.raw_flows)
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let the_template b flows =
  match flows with
  | fl :: _ ->
    (match String_context.template_of b fl with
     | Some t -> (fl, t)
     | None -> Alcotest.fail "no template")
  | [] -> Alcotest.fail "no flows"

let test_template_reconstruction () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("name");
              resp.getWriter().println("<b>" + s + "</b>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  (match t with
   | [ String_context.Lit "<b>"; String_context.Tainted;
       String_context.Lit "</b>" ] -> ()
   | _ ->
     Alcotest.failf "unexpected template: %a" String_context.pp_template t)

let test_html_text_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println("Hello, " + req.getParameter("n") + "!");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "text context" true
    (String_context.html_context t = String_context.Html_text)

let test_html_attribute_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("u");
              resp.getWriter().println("<a href=\"" + u + "\">link</a>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "attribute context" true
    (String_context.html_context t = String_context.Html_attribute)

let test_sql_quoted_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("u");
              Connection c = DriverManager.getConnection("jdbc:x");
              Statement st = c.createStatement();
              st.executeQuery("SELECT * FROM t WHERE name='" + u + "'");
            }
          }|} ]
  in
  let fl, t =
    the_template b
      (List.filter (fun f -> f.Flows.fl_rule.Rules.issue = Rules.Sqli) flows)
  in
  ignore fl;
  Alcotest.(check bool) "quoted sql" true
    (String_context.sql_context t = String_context.Sql_quoted)

let test_sql_raw_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("id");
              Connection c = DriverManager.getConnection("jdbc:x");
              Statement st = c.createStatement();
              st.executeQuery("SELECT * FROM t WHERE id=" + u);
            }
          }|} ]
  in
  let _, t =
    the_template b
      (List.filter (fun f -> f.Flows.fl_rule.Rules.issue = Rules.Sqli) flows)
  in
  Alcotest.(check bool) "raw sql" true
    (String_context.sql_context t = String_context.Sql_raw)

let test_hole_for_opaque_fragments () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            String now() { return Date.getDate(); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("n");
              resp.getWriter().println(this.now() + ": " + s);
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "has a hole" true
    (List.exists (fun p -> p = String_context.Hole) t);
  Alcotest.(check bool) "still finds taint" true
    (List.exists (fun p -> p = String_context.Tainted) t)

(* Classification edges on directly-constructed templates: what happens
   when a Hole sits next to the Tainted piece, and the quote/bracket
   states at the taint boundary. *)
let test_classify_hole_adjacent () =
  let open String_context in
  (* a Hole before the taint hides the syntactic context entirely *)
  Alcotest.(check bool) "hole-before-taint html" true
    (html_context [ Hole; Tainted ] = Html_unknown);
  Alcotest.(check bool) "hole-before-taint sql" true
    (sql_context [ Hole; Tainted ] = Sql_unknown);
  Alcotest.(check bool) "hole mid-prefix html" true
    (html_context [ Lit "<b>"; Hole; Tainted ] = Html_unknown);
  (* a Hole after the taint does not: the prefix is still known *)
  Alcotest.(check bool) "hole-after-taint html" true
    (html_context [ Lit "<b>"; Tainted; Hole ] = Html_text);
  Alcotest.(check bool) "hole-after-taint sql" true
    (sql_context [ Lit "WHERE n='"; Tainted; Hole ] = Sql_quoted)

let test_classify_quote_edges () =
  let open String_context in
  (* open tag + open quote: attribute injection *)
  Alcotest.(check bool) "attr" true
    (html_context [ Lit "<a href=\""; Tainted; Lit "\">" ] = Html_attribute);
  (* open tag but no quote: neither text nor a quoted attribute *)
  Alcotest.(check bool) "unquoted in-tag" true
    (html_context [ Lit "<img src="; Tainted ] = Html_unknown);
  (* quote closed again before the taint: back to raw/text *)
  Alcotest.(check bool) "quote closed html" true
    (html_context [ Lit "<a href=\"x\">"; Tainted ] = Html_text);
  Alcotest.(check bool) "quote closed sql" true
    (sql_context [ Lit "SELECT 'x' WHERE id="; Tainted ] = Sql_raw)

(* template reconstruction must also survive a flow whose taint travels
   through a carrier collection, not just straight concatenation *)
let test_template_through_carrier () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Vector v = new Vector();
              v.add(req.getParameter("n"));
              String s = (String) v.get(0);
              resp.getWriter().println("<i>" + s + "</i>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "taint survives the carrier" true
    (List.exists (fun p -> p = String_context.Tainted) t)

let test_diagnose_strings () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println("<i>" + req.getParameter("n") + "</i>");
            }
          }|} ]
  in
  match flows with
  | fl :: _ ->
    (match String_context.diagnose b fl with
     | Some d ->
       Alcotest.(check bool) "mentions html context" true
         (String.length d > 0
          && String.sub d 0 4 = "HTML")
     | None -> Alcotest.fail "no diagnosis")
  | [] -> Alcotest.fail "no flows"

let suite =
  [ Alcotest.test_case "template reconstruction" `Quick
      test_template_reconstruction;
    Alcotest.test_case "html text context" `Quick test_html_text_context;
    Alcotest.test_case "html attribute context" `Quick
      test_html_attribute_context;
    Alcotest.test_case "sql quoted context" `Quick test_sql_quoted_context;
    Alcotest.test_case "sql raw context" `Quick test_sql_raw_context;
    Alcotest.test_case "holes for opaque fragments" `Quick
      test_hole_for_opaque_fragments;
    Alcotest.test_case "hole adjacent to taint" `Quick
      test_classify_hole_adjacent;
    Alcotest.test_case "quote/bracket edges" `Quick test_classify_quote_edges;
    Alcotest.test_case "template through carrier" `Quick
      test_template_through_carrier;
    Alcotest.test_case "diagnose" `Quick test_diagnose_strings ]
