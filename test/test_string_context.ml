(* Tests for the string-context diagnostics (§9 future-work extension). *)

open Core

let flows_of srcs =
  let loaded =
    Taj.load { Taj.name = "sc"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> (c.Taj.builder, c.Taj.report.Report.raw_flows)
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let the_template b flows =
  match flows with
  | fl :: _ ->
    (match String_context.template_of b fl with
     | Some t -> (fl, t)
     | None -> Alcotest.fail "no template")
  | [] -> Alcotest.fail "no flows"

let test_template_reconstruction () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("name");
              resp.getWriter().println("<b>" + s + "</b>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  (match t with
   | [ String_context.Lit "<b>"; String_context.Tainted;
       String_context.Lit "</b>" ] -> ()
   | _ ->
     Alcotest.failf "unexpected template: %a" String_context.pp_template t)

let test_html_text_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println("Hello, " + req.getParameter("n") + "!");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "text context" true
    (String_context.html_context t = String_context.Html_text)

let test_html_attribute_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("u");
              resp.getWriter().println("<a href=\"" + u + "\">link</a>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "attribute context" true
    (String_context.html_context t = String_context.Html_attribute)

let test_sql_quoted_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("u");
              Connection c = DriverManager.getConnection("jdbc:x");
              Statement st = c.createStatement();
              st.executeQuery("SELECT * FROM t WHERE name='" + u + "'");
            }
          }|} ]
  in
  let fl, t =
    the_template b
      (List.filter (fun f -> f.Flows.fl_rule.Rules.issue = Rules.Sqli) flows)
  in
  ignore fl;
  Alcotest.(check bool) "quoted sql" true
    (String_context.sql_context t = String_context.Sql_quoted)

let test_sql_raw_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("id");
              Connection c = DriverManager.getConnection("jdbc:x");
              Statement st = c.createStatement();
              st.executeQuery("SELECT * FROM t WHERE id=" + u);
            }
          }|} ]
  in
  let _, t =
    the_template b
      (List.filter (fun f -> f.Flows.fl_rule.Rules.issue = Rules.Sqli) flows)
  in
  Alcotest.(check bool) "raw sql" true
    (String_context.sql_context t = String_context.Sql_raw)

let test_hole_for_opaque_fragments () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            String now() { return Date.getDate(); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("n");
              resp.getWriter().println(this.now() + ": " + s);
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "has a hole" true
    (List.exists (fun p -> p = String_context.Hole) t);
  Alcotest.(check bool) "still finds taint" true
    (List.exists (fun p -> p = String_context.Tainted) t)

(* Classification edges on directly-constructed templates: what happens
   when a Hole sits next to the Tainted piece, and the quote/bracket
   states at the taint boundary. *)
let test_classify_hole_adjacent () =
  let open String_context in
  (* a Hole before the taint hides the syntactic context entirely *)
  Alcotest.(check bool) "hole-before-taint html" true
    (html_context [ Hole; Tainted ] = Html_unknown);
  Alcotest.(check bool) "hole-before-taint sql" true
    (sql_context [ Hole; Tainted ] = Sql_unknown);
  Alcotest.(check bool) "hole mid-prefix html" true
    (html_context [ Lit "<b>"; Hole; Tainted ] = Html_unknown);
  (* a Hole after the taint does not: the prefix is still known *)
  Alcotest.(check bool) "hole-after-taint html" true
    (html_context [ Lit "<b>"; Tainted; Hole ] = Html_text);
  Alcotest.(check bool) "hole-after-taint sql" true
    (sql_context [ Lit "WHERE n='"; Tainted; Hole ] = Sql_quoted)

let test_classify_quote_edges () =
  let open String_context in
  (* open tag + open quote: attribute injection *)
  Alcotest.(check bool) "attr" true
    (html_context [ Lit "<a href=\""; Tainted; Lit "\">" ] = Html_attribute);
  (* open tag but no quote: neither text nor a quoted attribute *)
  Alcotest.(check bool) "unquoted in-tag" true
    (html_context [ Lit "<img src="; Tainted ] = Html_unknown);
  (* quote closed again before the taint: back to raw/text *)
  Alcotest.(check bool) "quote closed html" true
    (html_context [ Lit "<a href=\"x\">"; Tainted ] = Html_text);
  Alcotest.(check bool) "quote closed sql" true
    (sql_context [ Lit "SELECT 'x' WHERE id="; Tainted ] = Sql_raw)

(* template reconstruction must also survive a flow whose taint travels
   through a carrier collection, not just straight concatenation *)
let test_template_through_carrier () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Vector v = new Vector();
              v.add(req.getParameter("n"));
              String s = (String) v.get(0);
              resp.getWriter().println("<i>" + s + "</i>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "taint survives the carrier" true
    (List.exists (fun p -> p = String_context.Tainted) t)

let test_diagnose_strings () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println("<i>" + req.getParameter("n") + "</i>");
            }
          }|} ]
  in
  match flows with
  | fl :: _ ->
    (match String_context.diagnose b fl with
     | Some d ->
       Alcotest.(check bool) "mentions html context" true
         (String.length d > 0
          && String.sub d 0 4 = "HTML")
     | None -> Alcotest.fail "no diagnosis")
  | [] -> Alcotest.fail "no flows"

(* ------------------------------------------------------------------ *)
(* Template-algebra properties (QCheck)                               *)
(* ------------------------------------------------------------------ *)

let piece_gen =
  QCheck.Gen.(
    frequency
      [ (4, map (fun s -> Strings.Template.Lit s)
             (string_size ~gen:(oneofl [ '<'; '>'; '\''; '"'; '='; 'a'; ' ' ])
                (int_range 0 4)));
        (1, return Strings.Template.Tainted);
        (1, return Strings.Template.Hole) ])

let template_arb =
  QCheck.make
    ~print:(Fmt.str "%a" Strings.Template.pp)
    QCheck.Gen.(list_size (int_range 0 8) piece_gen)

let prop_concat_assoc =
  QCheck.Test.make ~name:"concat is associative up to normalize" ~count:500
    (QCheck.triple template_arb template_arb template_arb)
    (fun (a, b, c) ->
       Strings.Template.(concat (concat a b) c = concat a (concat b c)))

let prop_hole_absorption =
  QCheck.Test.make
    ~name:"classification invariant under hole absorption" ~count:500
    template_arb
    (fun t ->
       let c = Strings.Template.compact t in
       Strings.Template.html_context c = Strings.Template.html_context t
       && Strings.Template.sql_context c = Strings.Template.sql_context t)

(* splitting any literal into two adjacent literals is a no-op for the
   classifiers: they read the concatenated constant prefix *)
let prop_literal_split_stable =
  QCheck.Test.make
    ~name:"classification stable under literal splitting" ~count:500
    (QCheck.pair template_arb QCheck.small_nat)
    (fun (t, k) ->
       let split =
         List.concat_map
           (function
             | Strings.Template.Lit s when String.length s > 1 ->
               let i = 1 + (k mod (String.length s - 1)) in
               [ Strings.Template.Lit (String.sub s 0 i);
                 Strings.Template.Lit
                   (String.sub s i (String.length s - i)) ]
             | p -> [ p ])
           t
       in
       Strings.Template.html_context split = Strings.Template.html_context t
       && Strings.Template.sql_context split = Strings.Template.sql_context t)

(* ------------------------------------------------------------------ *)
(* Classification edges: nested quotes, numeric SQL                   *)
(* ------------------------------------------------------------------ *)

let test_nested_attribute_quotes () =
  let open String_context in
  (* double-quoted attribute containing single quotes: still inside the
     outer double quote at the taint *)
  Alcotest.(check bool) "single quotes nested in double" true
    (html_context
       [ Lit "<a title=\"it's called '"; Tainted; Lit "'\">" ]
     = Html_attribute);
  (* the inner quote of the opposite kind does not close the outer one *)
  Alcotest.(check bool) "double nested in single" true
    (html_context [ Lit "<a title='say \""; Tainted; Lit "\"'>" ]
     = Html_attribute);
  (* matching quote closes: by the taint we are back in the tag, unquoted *)
  Alcotest.(check bool) "closed attribute then taint in tag" true
    (html_context [ Lit "<a title=\"x\" href="; Tainted ] = Html_unknown)

let test_numeric_sql_positions () =
  let open String_context in
  Alcotest.(check bool) "numeric comparison" true
    (sql_context [ Lit "SELECT v FROM t WHERE id = "; Tainted ] = Sql_raw);
  Alcotest.(check bool) "LIMIT clause" true
    (sql_context [ Lit "SELECT v FROM t LIMIT "; Tainted ] = Sql_raw);
  (* a closed literal earlier in the query does not quote the taint *)
  Alcotest.(check bool) "closed literal before numeric position" true
    (sql_context [ Lit "SELECT v FROM t WHERE k='x' AND n="; Tainted ]
     = Sql_raw);
  (* the satellite fix: attacker controls the statement head *)
  Alcotest.(check bool) "leading taint is raw" true
    (sql_context [ Tainted; Lit " WHERE 1=1" ] = Sql_raw)

let suite =
  [ Alcotest.test_case "template reconstruction" `Quick
      test_template_reconstruction;
    Alcotest.test_case "html text context" `Quick test_html_text_context;
    Alcotest.test_case "html attribute context" `Quick
      test_html_attribute_context;
    Alcotest.test_case "sql quoted context" `Quick test_sql_quoted_context;
    Alcotest.test_case "sql raw context" `Quick test_sql_raw_context;
    Alcotest.test_case "holes for opaque fragments" `Quick
      test_hole_for_opaque_fragments;
    Alcotest.test_case "hole adjacent to taint" `Quick
      test_classify_hole_adjacent;
    Alcotest.test_case "quote/bracket edges" `Quick test_classify_quote_edges;
    Alcotest.test_case "template through carrier" `Quick
      test_template_through_carrier;
    Alcotest.test_case "diagnose" `Quick test_diagnose_strings;
    QCheck_alcotest.to_alcotest prop_concat_assoc;
    QCheck_alcotest.to_alcotest prop_hole_absorption;
    QCheck_alcotest.to_alcotest prop_literal_split_stable;
    Alcotest.test_case "nested attribute quotes" `Quick
      test_nested_attribute_quotes;
    Alcotest.test_case "numeric sql positions" `Quick
      test_numeric_sql_positions ]
