(* The type-qualifier triage (rung zero) and its pre-filter contract:
   - the inference finds type-level taint witnesses with no slicing;
   - untaint-reachable helpers are skippable, rule-relevant code is not;
   - the pre-filter changes no report byte, at any worker-pool size,
     over the whole benchmark suite (the metamorphic contract);
   - an injected triage fault degrades to the unfiltered full analysis
     instead of failing the run;
   - the degradation ladder gets strictly cheaper rung to rung and
     always ends at the triage rung;
   - rung zero loses no planted true positive (it over-approximates);
   - the shared CSV writer quotes RFC-4180 edge cases. *)

open Core

let load srcs =
  Taj.load { Taj.name = "triage"; app_sources = srcs; descriptor = "" }

let servlet =
  {|class Cell { String v; }
    class Helper { int add(int a, int b) { return a + b; } }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        c.v = req.getParameter("x");
        resp.getWriter().println(c.v);
      }
    }|}

let clean_servlet =
  {|class Quiet extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        resp.getWriter().println("static text");
      }
    }|}

let triage_of srcs = Taj.triage ~rules:Rules.default_rules (load srcs)

(* ------------------------------------------------------------------ *)
(* inference                                                          *)
(* ------------------------------------------------------------------ *)

let test_finds_type_level_flow () =
  let v = triage_of [ servlet ] in
  let fs = Triage.findings v in
  Alcotest.(check bool) "some finding" true (fs <> []);
  Alcotest.(check bool) "xss found" true
    (List.exists (fun f -> f.Triage.f_rule = "xss") fs);
  List.iter
    (fun (f : Triage.finding) ->
       Alcotest.(check string) "in the servlet class" "Page" f.Triage.f_class;
       Alcotest.(check bool) "never an untainted finding" true
         (f.Triage.f_qual <> Triage.Untainted))
    fs;
  let s = Triage.stats v in
  Alcotest.(check bool) "methods swept" true (s.Triage.s_methods > 0);
  Alcotest.(check bool) "fixpoint took at least one pass" true
    (s.Triage.s_passes >= 1);
  Alcotest.(check int) "finding count matches stats"
    s.Triage.s_findings (List.length fs)

let test_clean_program_has_no_findings () =
  let v = triage_of [ clean_servlet ] in
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun f -> f.Triage.f_rule) (Triage.findings v))

let test_keep_skips_pure_helpers () =
  let loaded = load [ servlet ] in
  let v = Taj.triage ~rules:Rules.default_rules loaded in
  Alcotest.(check bool) "pure helper is skippable" false
    (Triage.keep_id v "Helper.add/3");
  (* the tainted servlet method must survive any filter *)
  Alcotest.(check bool) "tainted method kept" true
    (Triage.keep_id v "Page.doGet/3")

let test_rule_has_source () =
  let with_source = triage_of [ servlet ] in
  Alcotest.(check bool) "xss has a matched source" true
    (Triage.rule_has_source with_source "xss");
  let without = triage_of [ clean_servlet ] in
  Alcotest.(check bool) "no source, rule skippable" false
    (Triage.rule_has_source without "xss")

(* ------------------------------------------------------------------ *)
(* pre-filter metamorphic contract                                    *)
(* ------------------------------------------------------------------ *)

let rendered_report ~jobs ~filter loaded =
  let config =
    { (Config.preset ~scale:0.02 Config.Hybrid_optimized) with
      Config.triage_filter = filter }
  in
  match (Taj.run ~jobs loaded config).Taj.result with
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
  | Taj.Completed c -> Fmt.str "%a" (Report.pp c.Taj.builder) c.Taj.report

(* The whole benchmark suite, filter on vs off, sequential and at
   jobs=4: the filter may only skip work, never change a report byte. *)
let test_filter_byte_identity_all_apps () =
  List.iter
    (fun (a : Workloads.Apps.app) ->
       let loaded =
         Taj.load
           (Workloads.Codegen.to_input
              (Workloads.Apps.generate ~scale:0.02 a))
       in
       let baseline = rendered_report ~jobs:1 ~filter:false loaded in
       List.iter
         (fun jobs ->
            Alcotest.(check string)
              (Printf.sprintf "%s: filtered report identical at jobs=%d"
                 a.Workloads.Apps.name jobs)
              baseline
              (rendered_report ~jobs ~filter:true loaded))
         [ 1; 4 ])
    Workloads.Apps.table2

(* ------------------------------------------------------------------ *)
(* fault containment                                                  *)
(* ------------------------------------------------------------------ *)

let run_with_fault site =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm site ~after:1;
  let loaded = load [ servlet ] in
  let report =
    match
      (Taj.run loaded (Config.preset ~scale:0.02 Config.Hybrid_optimized))
        .Taj.result
    with
    | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
    | Taj.Completed c ->
      Alcotest.(check bool) (site ^ ": fault fired") true
        (Fault.fired site > 0);
      Alcotest.(check bool) (site ^ ": triage fault recorded") true
        (List.exists
           (function
             | Diagnostics.Phase_fault { phase = Diagnostics.Triage; _ } ->
               true
             | _ -> false)
           c.Taj.diagnostics);
      Fmt.str "%a" (Report.pp c.Taj.builder) c.Taj.report
  in
  Fault.reset ();
  let clean =
    match
      (Taj.run loaded (Config.preset ~scale:0.02 Config.Hybrid_optimized))
        .Taj.result
    with
    | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
    | Taj.Completed c -> Fmt.str "%a" (Report.pp c.Taj.builder) c.Taj.report
  in
  (* the faulted run keeps every flow of the clean run and appends the
     recorded triage fault as a partiality note — so the clean rendering
     must be a strict prefix of the faulted one *)
  Alcotest.(check bool) (site ^ ": all flows survive the fault") true
    (String.length report > String.length clean
     && String.sub report 0 (String.length clean) = clean)

let test_fault_in_infer_degrades_to_unfiltered () =
  run_with_fault Fault.site_triage_infer

let test_fault_in_filter_degrades_to_unfiltered () =
  run_with_fault Fault.site_triage_filter

(* ------------------------------------------------------------------ *)
(* ladder shape                                                       *)
(* ------------------------------------------------------------------ *)

(* Cost vector of a rung: every budget normalized to "max_int =
   unbounded". Cheaper-or-equal in every dimension and strictly cheaper
   in at least one is what "the ladder only descends" means. *)
let cost (_, (cfg : Config.t)) =
  if cfg.Config.algorithm = Config.Type_triage then [ 0; 0; 0; 0 ]
  else
    [ Option.value ~default:max_int cfg.Config.max_cg_nodes;
      Option.value ~default:max_int cfg.Config.max_heap_transitions;
      Option.value ~default:max_int cfg.Config.max_flow_length;
      (if cfg.Config.nested_taint_depth < 0 then max_int
       else cfg.Config.nested_taint_depth) ]

let strictly_cheaper a b =
  List.for_all2 (fun x y -> y <= x) (cost a) (cost b)
  && List.exists2 (fun x y -> y < x) (cost a) (cost b)

let prop_ladder_descends_to_triage =
  QCheck.Test.make ~name:"ladder rungs strictly cheaper, triage last"
    ~count:100
    QCheck.(
      pair (int_range 0 4) (float_range 0.02 1.0))
    (fun (alg_ix, scale) ->
       let algorithm = List.nth Config.all_algorithms alg_ix in
       let ladder =
         Config.degradation_ladder ~scale (Config.preset ~scale algorithm)
       in
       let rec descends = function
         | a :: (b :: _ as rest) -> strictly_cheaper a b && descends rest
         | [ _ ] | [] -> true
       in
       ladder <> []
       && (snd (List.nth ladder (List.length ladder - 1))).Config.algorithm
          = Config.Type_triage
       && List.length
            (List.filter
               (fun (_, c) -> c.Config.algorithm = Config.Type_triage)
               ladder)
          = 1
       && descends ladder)

let test_triage_ladder_is_empty () =
  Alcotest.(check int) "nothing below rung zero" 0
    (List.length (Config.degradation_ladder (Config.preset Config.Type_triage)))

(* ------------------------------------------------------------------ *)
(* rung-zero recall                                                   *)
(* ------------------------------------------------------------------ *)

let test_rung_zero_loses_no_planted_tp () =
  List.iter
    (fun name ->
       let app = Option.get (Workloads.Apps.find name) in
       let rows = Workloads.Score.run_rungs ~scale:0.02 app in
       match List.rev rows with
       | [] -> Alcotest.fail "empty ladder"
       | last :: _ ->
         Alcotest.(check string) (name ^ ": last rung is triage") "triage"
           last.Workloads.Score.rr_rung;
         (match last.Workloads.Score.rr_classification with
          | None -> Alcotest.fail (name ^ ": rung zero did not complete")
          | Some c ->
            Alcotest.(check int) (name ^ ": rung zero loses no planted TP")
              0 c.Workloads.Score.false_negatives))
    [ "BlueBlog"; "Friki"; "Webgoat" ]

(* ------------------------------------------------------------------ *)
(* CSV quoting                                                        *)
(* ------------------------------------------------------------------ *)

let test_csv_quoting () =
  Alcotest.(check string) "clean field passes through" "plain"
    (Obs.Csv.field "plain");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Obs.Csv.field "a,b");
  Alcotest.(check string) "embedded quote doubled" "\"a\"\"b\""
    (Obs.Csv.field "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Obs.Csv.field "a\nb");
  Alcotest.(check string) "carriage return quoted" "\"a\rb\""
    (Obs.Csv.field "a\rb");
  Alcotest.(check string) "row quotes per field and terminates"
    "x,\"a,\"\"b\"\"\n\",1\n"
    (Obs.Csv.row [ "x"; "a,\"b\"\n"; "1" ])

let suite =
  [ Alcotest.test_case "type-level flow found" `Quick
      test_finds_type_level_flow;
    Alcotest.test_case "clean program silent" `Quick
      test_clean_program_has_no_findings;
    Alcotest.test_case "pure helpers skippable" `Quick
      test_keep_skips_pure_helpers;
    Alcotest.test_case "rule-has-source" `Quick test_rule_has_source;
    Alcotest.test_case "filter byte-identity over all apps" `Quick
      test_filter_byte_identity_all_apps;
    Alcotest.test_case "infer fault degrades to unfiltered" `Quick
      test_fault_in_infer_degrades_to_unfiltered;
    Alcotest.test_case "filter fault degrades to unfiltered" `Quick
      test_fault_in_filter_degrades_to_unfiltered;
    QCheck_alcotest.to_alcotest prop_ladder_descends_to_triage;
    Alcotest.test_case "nothing below rung zero" `Quick
      test_triage_ladder_is_empty;
    Alcotest.test_case "rung zero loses no planted TP" `Quick
      test_rung_zero_loses_no_planted_tp;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting ]
