(* The multicore engine's contract: parallelism is an implementation
   detail. [Parallel.map ~jobs] is observationally [List.map]; a jobs=N
   analysis produces a report structurally identical to the jobs=1 run on
   every workload app under every algorithm configuration; and fault
   injection inside a worker domain degrades exactly as it does
   sequentially — no hung domains, no lost diagnostics. *)

open Core

(* the pool size the parallel half of each comparison runs at; CI pins it
   via TAJ_JOBS=4 *)
let par_jobs =
  match Parallel.env_jobs () with Some n when n > 1 -> n | _ -> 4

(* ------------------------------------------------------------------ *)
(* Parallel.map: property and unit tests                              *)
(* ------------------------------------------------------------------ *)

let f_probe x = (x * 31) + 7

let prop_matches_list_map =
  QCheck.Test.make ~count:60 ~name:"Parallel.map ~jobs equals List.map"
    QCheck.(pair (int_range 1 9) (list small_int))
    (fun (jobs, xs) ->
       Parallel.map ~jobs f_probe xs = List.map f_probe xs)

let test_map_sizes () =
  (* 0, 1, a prime, and well past any plausible pool size *)
  List.iter
    (fun n ->
       let xs = List.init n (fun i -> i - 3) in
       let expected = List.map f_probe xs in
       List.iter
         (fun jobs ->
            Alcotest.(check (list int))
              (Printf.sprintf "size %d at jobs %d" n jobs)
              expected
              (Parallel.map ~jobs f_probe xs))
         [ 1; 2; 3; 4; 7; 16 ])
    [ 0; 1; 2; 13; 97 ]

let test_map_order_preserved () =
  let xs = List.init 200 (fun i -> i) in
  Alcotest.(check (list int)) "index order survives work stealing" xs
    (Parallel.map ~jobs:8 Fun.id xs)

let test_map_first_exception () =
  (* two failing tasks; whichever worker reaches them first, the re-raised
     exception is the lowest-index one, and only after every task ran *)
  let ran = Atomic.make 0 in
  let f i =
    Atomic.incr ran;
    if i = 11 || i = 3 then failwith (string_of_int i) else i
  in
  (match Parallel.map ~jobs:4 f (List.init 50 Fun.id) with
   | _ -> Alcotest.fail "expected the injected exception to re-raise"
   | exception Failure msg ->
     Alcotest.(check string) "lowest-index task's exception wins" "3" msg);
  Alcotest.(check int) "all tasks ran before the re-raise (workers joined)"
    50 (Atomic.get ran)

let test_map_sequential_when_jobs_one () =
  (* jobs<=1 must not spawn: effects happen on the calling domain, in
     list order *)
  let trace = ref [] in
  let self = Domain.self () in
  let f x =
    trace := x :: !trace;
    assert (Domain.self () = self);
    x
  in
  ignore (Parallel.map ~jobs:1 f [ 1; 2; 3 ] : int list);
  Alcotest.(check (list int)) "left-to-right on the calling domain"
    [ 3; 2; 1 ] !trace

(* ------------------------------------------------------------------ *)
(* Determinism: jobs=1 and jobs=N agree on every app x configuration  *)
(* ------------------------------------------------------------------ *)

let scale = 0.02

type digest = {
  d_result : string;               (* "completed" or the failure reason *)
  d_report : string;               (* fully rendered report *)
  d_stats : Engine.rule_stats list;
  d_filtered : int;
  d_flags : bool * bool;           (* exhausted, interrupted *)
  d_diags : string list;           (* degradation kinds, arrival order *)
  d_cg : int * int;
}

let digest (analysis : Taj.analysis) : digest =
  match analysis.Taj.result with
  | Taj.Did_not_complete reason ->
    { d_result = "did-not-complete: " ^ reason; d_report = ""; d_stats = [];
      d_filtered = 0; d_flags = (false, false); d_diags = []; d_cg = (0, 0) }
  | Taj.Completed c ->
    { d_result = "completed";
      d_report = Fmt.str "%a" (Report.pp c.Taj.builder) c.Taj.report;
      d_stats = c.Taj.outcome.Engine.rule_stats;
      d_filtered = c.Taj.outcome.Engine.filtered_by_length;
      d_flags =
        (c.Taj.outcome.Engine.exhausted, c.Taj.outcome.Engine.interrupted);
      d_diags = List.map Diagnostics.kind_name c.Taj.diagnostics;
      d_cg = (c.Taj.cg_nodes, c.Taj.cg_edges) }

let check_digest ~ctx (seq : digest) (par : digest) =
  Alcotest.(check string) (ctx ^ ": result") seq.d_result par.d_result;
  Alcotest.(check string) (ctx ^ ": rendered report") seq.d_report
    par.d_report;
  Alcotest.(check bool) (ctx ^ ": per-rule stats") true
    (seq.d_stats = par.d_stats);
  Alcotest.(check int) (ctx ^ ": flows filtered by length bound")
    seq.d_filtered par.d_filtered;
  Alcotest.(check (pair bool bool)) (ctx ^ ": exhausted/interrupted")
    seq.d_flags par.d_flags;
  Alcotest.(check (list string)) (ctx ^ ": degradation kinds") seq.d_diags
    par.d_diags;
  Alcotest.(check (pair int int)) (ctx ^ ": callgraph size") seq.d_cg
    par.d_cg

(* one fresh load per jobs mode: this also proves the parallel frontend
   yields the same program (dispatcher naming included) as the
   sequential one *)
let check_app_determinism (a : Workloads.Apps.app) () =
  let g = Workloads.Apps.generate ~scale a in
  let input = Workloads.Codegen.to_input g in
  let seq = Taj.load ~jobs:1 input in
  let par = Taj.load ~jobs:par_jobs input in
  Alcotest.(check bool) "parallel load: reflection stats equal" true
    (seq.Taj.reflection_stats = par.Taj.reflection_stats);
  Alcotest.(check int) "parallel load: synthesized sources equal"
    seq.Taj.synthesized_sources par.Taj.synthesized_sources;
  Alcotest.(check (list (pair int string))) "parallel load: skipped units"
    seq.Taj.skipped_units par.Taj.skipped_units;
  List.iter
    (fun alg ->
       let ctx = a.Workloads.Apps.name ^ "/" ^ Config.algorithm_name alg in
       let config = Config.preset ~scale alg in
       let d1 = digest (Taj.run ~jobs:1 seq config) in
       let dn = digest (Taj.run ~jobs:par_jobs par config) in
       check_digest ~ctx d1 dn)
    Config.all_algorithms

(* ------------------------------------------------------------------ *)
(* Metamorphic: permuting compilation-unit order changes node ids and *)
(* witness paths, but never which issues are reported                 *)
(* ------------------------------------------------------------------ *)

let input srcs = { Taj.name = "parallel"; app_sources = srcs; descriptor = "" }

let unit_cell = {|class Cell { String v; }|}

let unit_helper = {|class Helper { String pass(String s) { return s; } }|}

let unit_page =
  {|class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        Helper h = new Helper();
        c.v = h.pass(req.getParameter("x"));
        resp.getWriter().println(c.v);
        Connection conn = DriverManager.getConnection("jdbc:db");
        Statement st = conn.createStatement();
        String s = h.pass(c.v);
        st.executeQuery(s);
      }
    }|}

(* node-id-independent view of a completed run: sorted
   (issue, sink, group size) strings plus the totals.  Witness paths and
   LCPs are deliberately excluded — they may legitimately differ when
   unit order (hence worklist order) changes. *)
let canonical (analysis : Taj.analysis) =
  match analysis.Taj.result with
  | Taj.Did_not_complete reason -> Alcotest.failf "did not complete: %s" reason
  | Taj.Completed c ->
    let issues =
      List.map
        (fun (ir : Report.issue_report) ->
           Fmt.str "%s | sink %a | %d flow(s)"
             (Rules.issue_name ir.Report.ir_issue)
             (Report.pp_stmt c.Taj.builder)
             ir.Report.ir_representative.Flows.fl_sink
             ir.Report.ir_flow_count)
        c.Taj.report.Report.issues
    in
    (List.sort compare issues, Report.flow_count c.Taj.report)

let test_metamorphic_unit_permutation () =
  let units = [ unit_cell; unit_helper; unit_page ] in
  let permutations =
    [ units;
      [ unit_page; unit_cell; unit_helper ];
      [ unit_helper; unit_page; unit_cell ] ]
  in
  let base = canonical (Taj.analyze ~jobs:1 (input units)) in
  Alcotest.(check bool) "fixture reports at least two issues" true
    (List.length (fst base) >= 2);
  List.iteri
    (fun i perm ->
       List.iter
         (fun jobs ->
            Alcotest.(check (pair (list string) int))
              (Printf.sprintf "permutation %d at jobs %d" i jobs)
              base
              (canonical (Taj.analyze ~jobs (input perm))))
         [ 1; par_jobs ])
    permutations

(* ------------------------------------------------------------------ *)
(* Stress: fault injection inside worker domains                      *)
(* ------------------------------------------------------------------ *)

let two_flows =
  {|class Cell { String v; }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Cell c = new Cell();
        c.v = req.getParameter("x");
        resp.getWriter().println(c.v);
        Connection conn = DriverManager.getConnection("jdbc:db");
        Statement st = conn.createStatement();
        st.executeQuery(c.v);
      }
    }|}

let par_options =
  { Supervisor.default_options with Supervisor.jobs = par_jobs }

let supervise_par () = Supervisor.run ~options:par_options (input [ two_flows ])

(* same acceptance contract as the sequential resilience suite: the fault
   fires in some worker, is contained to it, and the supervisor still
   produces a completed (possibly degraded) run *)
let check_contained_parallel site =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm site ~after:1;
  let outcome = supervise_par () in
  Alcotest.(check bool) (site ^ ": fault fired in a worker") true
    (Fault.fired site > 0);
  Alcotest.(check bool) (site ^ ": degradation recorded") true
    (outcome.Supervisor.sv_diagnostics <> []);
  match outcome.Supervisor.sv_analysis with
  | Some { Taj.result = Taj.Completed _; _ } -> ()
  | Some { Taj.result = Taj.Did_not_complete _; _ } | None ->
    Alcotest.failf "%s: no rung completed at jobs=%d: %s" site par_jobs
      (Fmt.str "%a"
         (Fmt.list ~sep:Fmt.comma Diagnostics.pp_degradation)
         outcome.Supervisor.sv_diagnostics)

let test_worker_fault_parse () = check_contained_parallel Fault.site_parse

let test_worker_fault_tabulation () =
  check_contained_parallel Fault.site_tabulation

let test_worker_fault_heap () = check_contained_parallel Fault.site_heap

let test_worker_rule_fault_is_isolated () =
  (* the faulted rule is charged, the rules running on sibling domains
     still report their flows — same contract as sequentially *)
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm Fault.site_tabulation ~after:1;
  let outcome = supervise_par () in
  Alcotest.(check bool) "one rule failed" true
    (List.exists
       (function Diagnostics.Rule_failed _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  Alcotest.(check bool) "sibling rules still found flows" true
    (Report.issue_count outcome.Supervisor.sv_report >= 1);
  Alcotest.(check bool) "the report is marked partial" true
    (Report.is_partial outcome.Supervisor.sv_report)

let test_worker_stall_does_not_hang () =
  (* a stalled worker delays its own rule only; the run joins every
     domain and completes with both flows and no degradation *)
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm ~action:(Fault.Stall 0.05) Fault.site_tabulation ~after:1;
  let outcome = supervise_par () in
  Alcotest.(check int) "stall fired once" 1 (Fault.fired Fault.site_tabulation);
  Alcotest.(check bool) "no degradation from a mere stall" true
    (outcome.Supervisor.sv_diagnostics = []);
  Alcotest.(check bool) "complete report" false
    (Report.is_partial outcome.Supervisor.sv_report);
  Alcotest.(check int) "both flows found" 2
    (Report.issue_count outcome.Supervisor.sv_report)

let test_worker_persistent_fault_walks_ladder () =
  (* with jobs=N the degradation ladder fires exactly as sequentially:
     every rung attempted in order, every Downgraded event recorded *)
  Fault.reset ();
  Fun.protect ~finally:Fault.reset @@ fun () ->
  Fault.arm ~once:false Fault.site_andersen ~after:1;
  let outcome = supervise_par () in
  Alcotest.(check (list string)) "every rung was attempted, in order"
    [ "hybrid-unbounded"; "hybrid-prioritized"; "hybrid-optimized";
      "hybrid-optimized"; "hybrid-optimized"; "triage" ]
    (List.map
       (fun (a : Supervisor.attempt) ->
          Config.algorithm_name a.Supervisor.at_algorithm)
       outcome.Supervisor.sv_attempts);
  Alcotest.(check int) "no Downgraded event was lost" 5
    (List.length
       (List.filter
          (function Diagnostics.Downgraded _ -> true | _ -> false)
          outcome.Supervisor.sv_diagnostics));
  Alcotest.(check bool) "the final report is partial" true
    (Report.is_partial outcome.Supervisor.sv_report)

let test_budget_cancel_across_domains () =
  (* a cancellation token set on the main domain is observed by budget
     polls inside worker domains *)
  let token = Atomic.make true in
  let options = { par_options with Supervisor.cancel = token } in
  let outcome = Supervisor.run ~options (input [ two_flows ]) in
  Alcotest.(check bool) "a cancellation event was recorded" true
    (List.exists
       (function Diagnostics.Cancelled _ -> true | _ -> false)
       outcome.Supervisor.sv_diagnostics);
  Alcotest.(check bool) "the report is partial" true
    (Report.is_partial outcome.Supervisor.sv_report)

(* ------------------------------------------------------------------ *)

let suite =
  [ QCheck_alcotest.to_alcotest prop_matches_list_map;
    Alcotest.test_case "map sizes 0/1/prime/over-pool" `Quick test_map_sizes;
    Alcotest.test_case "map preserves order" `Quick test_map_order_preserved;
    Alcotest.test_case "map re-raises first exception after join" `Quick
      test_map_first_exception;
    Alcotest.test_case "map jobs=1 is sequential" `Quick
      test_map_sequential_when_jobs_one;
    Alcotest.test_case "metamorphic: unit permutation" `Quick
      test_metamorphic_unit_permutation;
    Alcotest.test_case "worker fault in parse contained" `Quick
      test_worker_fault_parse;
    Alcotest.test_case "worker fault in tabulation contained" `Quick
      test_worker_fault_tabulation;
    Alcotest.test_case "worker fault in heap transition contained" `Quick
      test_worker_fault_heap;
    Alcotest.test_case "worker rule fault is isolated" `Quick
      test_worker_rule_fault_is_isolated;
    Alcotest.test_case "worker stall does not hang the pool" `Quick
      test_worker_stall_does_not_hang;
    Alcotest.test_case "persistent fault walks ladder at jobs=N" `Quick
      test_worker_persistent_fault_walks_ladder;
    Alcotest.test_case "cancellation crosses domains" `Quick
      test_budget_cancel_across_domains ]
  @ List.map
      (fun (a : Workloads.Apps.app) ->
         Alcotest.test_case
           ("determinism " ^ a.Workloads.Apps.name)
           `Slow
           (check_app_determinism a))
      Workloads.Apps.table2
