(* The incremental cache (lib/cache): metamorphic cache-equivalence over
   the Table 2 suite, corruption chaos, and the dirty-set closure.

   The contract under test is absolute: a cached run must be
   byte-identical to the equivalent uncached run — cold (filling the
   cache), warm (result-tier hit), after a comment-only edit (semantic
   result hit through the AST digests), and after a real edit (partial
   tier reuse) — at jobs=1 and jobs=4. A corrupted store may only ever
   cost warmth: cold fallback plus a [Cache_corrupt] diagnostic, never a
   crash, never a different report. *)

open Core

let scale = 0.02

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "taj-cache-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  d

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter
      (fun e -> rm_rf (Filename.concat path e))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let input_of ?(name_suffix = "") app_name =
  let app = Option.get (Workloads.Apps.find app_name) in
  let g = Workloads.Apps.generate ~scale app in
  let input = Workloads.Codegen.to_input g in
  { input with Taj.name = input.Taj.name ^ name_suffix }

let edit_unit ~f (input : Taj.input) =
  match input.Taj.app_sources with
  | first :: rest -> { input with Taj.app_sources = f first :: rest }
  | [] -> assert false

(* a line the lexer discards: changes the source digest, not the AST *)
let comment_edit = edit_unit ~f:(fun src -> src ^ "\n// cache probe\n")

(* new unreachable code: a different program, analyzed from the tiers *)
let semantic_edit =
  edit_unit ~f:(fun src ->
    src ^ "\nclass CacheProbeOrphan { int probe(int x) { return x; } }\n")

let run ?cache ?(jobs = 1) input =
  let options = { Supervisor.default_options with jobs } in
  Cache.Incr.analyze ?cache ~options input

let check_report ~what ~reference (o : Cache.Incr.outcome) =
  Alcotest.(check bool) (what ^ ": completed") false o.Cache.Incr.i_partial;
  if not (String.equal reference o.Cache.Incr.i_report) then
    Alcotest.failf "%s: report differs from reference" what

(* ------------------------------------------------------------------ *)
(* Metamorphic equivalence, all 22 applications                       *)
(* ------------------------------------------------------------------ *)

let check_app app_name =
  let input = input_of app_name in
  let reference = run input in
  Alcotest.(check bool)
    "reference completed" false reference.Cache.Incr.i_partial;
  let reference = reference.Cache.Incr.i_report in
  with_dir @@ fun dir ->
  let cache = Cache.Incr.create ~dir in
  let cold = run ~cache input in
  Alcotest.(check bool) "cold misses" false cold.Cache.Incr.i_from_cache;
  check_report ~what:"cold" ~reference cold;
  let warm = run ~cache input in
  Alcotest.(check bool) "warm hits" true warm.Cache.Incr.i_from_cache;
  check_report ~what:"warm" ~reference warm;
  (* a comment-only edit reparses one unit, then the AST digests prove
     the analysis input unchanged: full result reuse *)
  let commented = run ~cache (comment_edit input) in
  Alcotest.(check bool)
    "comment edit hits" true commented.Cache.Incr.i_from_cache;
  check_report ~what:"comment edit" ~reference commented;
  (* a real edit re-analyzes through the content-keyed tiers and must
     match an uncached analysis of the edited program exactly *)
  let edited = semantic_edit input in
  let edited_reference = run edited in
  check_report
    ~what:"semantic reference"
    ~reference:edited_reference.Cache.Incr.i_report edited_reference;
  let edited_warm = run ~cache edited in
  Alcotest.(check bool)
    "semantic edit re-analyzes" false edited_warm.Cache.Incr.i_from_cache;
  check_report
    ~what:"semantic edit" ~reference:edited_reference.Cache.Incr.i_report
    edited_warm;
  (* cross-jobs: a cache filled at jobs=4 must serve jobs=1 untouched *)
  with_dir @@ fun dir4 ->
  let cache4 = Cache.Incr.create ~dir:dir4 in
  let cold4 = run ~cache:cache4 ~jobs:4 input in
  Alcotest.(check bool) "jobs=4 cold misses" false cold4.Cache.Incr.i_from_cache;
  check_report ~what:"jobs=4 cold" ~reference cold4;
  let warm1 = run ~cache:cache4 ~jobs:1 input in
  Alcotest.(check bool) "jobs=1 warm hits" true warm1.Cache.Incr.i_from_cache;
  check_report ~what:"jobs=1 on jobs=4 cache" ~reference warm1

let test_equivalence_suite () =
  List.iter
    (fun (a : Workloads.Apps.app) -> check_app a.Workloads.Apps.name)
    Workloads.Apps.table2

(* ------------------------------------------------------------------ *)
(* Store persistence                                                  *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "app.tajcache" in
  let s = Cache.Store.load path in
  Alcotest.(check (option string)) "missing file is cold, not corrupt"
    None (Cache.Store.corruption s);
  Cache.Store.put s ~tier:"ast" ~key:"k1" "payload one";
  Cache.Store.put s ~tier:"result" ~key:"k2" (String.make 100_000 'x');
  Alcotest.(check bool) "save succeeds" true (Cache.Store.save s);
  let s' = Cache.Store.load path in
  Alcotest.(check (option string)) "reload is clean"
    None (Cache.Store.corruption s');
  Alcotest.(check int) "entries survive" 2 (Cache.Store.entry_count s');
  Alcotest.(check (option string)) "payload intact"
    (Some "payload one")
    (Cache.Store.find s' ~tier:"ast" ~key:"k1")

let test_frame_detects_damage () =
  let buf = Buffer.create 64 in
  Cache.Frame.add buf "hello";
  Cache.Frame.add buf "world";
  let data = Buffer.contents buf in
  Alcotest.(check (list string)) "roundtrip" [ "hello"; "world" ]
    (Cache.Frame.read_all data);
  let truncated = String.sub data 0 (String.length data - 3) in
  Alcotest.check_raises "truncation detected"
    (Cache.Frame.Corrupt "truncated frame payload") (fun () ->
      ignore (Cache.Frame.read_all truncated));
  let flipped = Bytes.of_string data in
  Bytes.set flipped
    (String.length data - 1)
    (Char.chr (Char.code (Bytes.get flipped (String.length data - 1)) lxor 1));
  Alcotest.check_raises "bit flip detected"
    (Cache.Frame.Corrupt "frame checksum mismatch") (fun () ->
      ignore (Cache.Frame.read_all (Bytes.to_string flipped)))

(* ------------------------------------------------------------------ *)
(* Corruption chaos: damaged stores degrade to cold, never to wrong   *)
(* ------------------------------------------------------------------ *)

let store_file dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".tajcache")
  with
  | [ f ] -> Filename.concat dir f
  | files -> Alcotest.failf "expected one store file, got %d" (List.length files)

let damage_then_check ~what ~damage () =
  let input = input_of ~name_suffix:("-" ^ what) "Friki" in
  let reference = (run input).Cache.Incr.i_report in
  with_dir @@ fun dir ->
  let cache = Cache.Incr.create ~dir in
  let cold = run ~cache input in
  check_report ~what:(what ^ ": cold") ~reference cold;
  damage (store_file dir);
  (* a fresh handle, as after a restart: the damaged file is discovered,
     discarded, and reported; the analysis itself is untouched *)
  let cache' = Cache.Incr.create ~dir in
  let o = run ~cache:cache' input in
  Alcotest.(check bool) (what ^ ": falls back to cold") false
    o.Cache.Incr.i_from_cache;
  check_report ~what:(what ^ ": after damage") ~reference o;
  (match o.Cache.Incr.i_diags with
   | [ Diagnostics.Cache_corrupt _ ] -> ()
   | ds ->
     Alcotest.failf "%s: expected one Cache_corrupt diagnostic, got %d"
       what (List.length ds));
  (* the fallback run rewrote the store: warmth is restored *)
  let again = run ~cache:cache' input in
  Alcotest.(check bool) (what ^ ": store heals") true
    again.Cache.Incr.i_from_cache;
  Alcotest.(check (list Alcotest.reject)) (what ^ ": no further diagnostics")
    [] again.Cache.Incr.i_diags;
  check_report ~what:(what ^ ": healed") ~reference again

let truncate_file path =
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 7);
  Unix.close fd

let bitflip_file path =
  let data = Bytes.of_string (Io.read_file path) in
  let i = Bytes.length data / 2 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x40));
  Io.write_file path (Bytes.to_string data)

let version_bump_file path =
  (* reframe the whole file under a future header: every frame checksum
     is valid, only the version disagrees *)
  let frames = Cache.Frame.read_all (Io.read_file path) in
  let buf = Buffer.create 65536 in
  List.iteri
    (fun i frame ->
       Cache.Frame.add buf
         (if i = 0 then "taj-cache 999 ocaml 9.99.9" else frame))
    frames;
  Io.write_file path (Buffer.contents buf)

let test_truncated_store () =
  damage_then_check ~what:"truncate" ~damage:truncate_file ()

let test_bitflipped_store () =
  damage_then_check ~what:"bitflip" ~damage:bitflip_file ()

let test_version_bumped_store () =
  damage_then_check ~what:"version" ~damage:version_bump_file ()

let test_read_fault_falls_back_cold () =
  let input = input_of ~name_suffix:"-rdfault" "Friki" in
  let reference = (run input).Cache.Incr.i_report in
  with_dir @@ fun dir ->
  let cache = Cache.Incr.create ~dir in
  check_report ~what:"pre-fault cold" ~reference (run ~cache input);
  Fault.arm Fault.site_cache_read ~after:1;
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let cache' = Cache.Incr.create ~dir in
  let o = run ~cache:cache' input in
  Alcotest.(check bool) "read fault means cold" false
    o.Cache.Incr.i_from_cache;
  check_report ~what:"read fault" ~reference o;
  (match o.Cache.Incr.i_diags with
   | [ Diagnostics.Cache_corrupt _ ] -> ()
   | _ -> Alcotest.fail "read fault: expected a Cache_corrupt diagnostic")

let test_write_fault_only_costs_warmth () =
  let input = input_of ~name_suffix:"-wrfault" "Friki" in
  let reference = (run input).Cache.Incr.i_report in
  with_dir @@ fun dir ->
  Fault.arm Fault.site_cache_write ~after:1 ~once:false;
  (Fun.protect ~finally:Fault.reset @@ fun () ->
   let cache = Cache.Incr.create ~dir in
   check_report ~what:"unpersisted cold" ~reference (run ~cache input);
   Alcotest.(check bool) "nothing was persisted" true
     (Sys.readdir dir = [||]));
  (* with the fault gone, the same directory warms up normally *)
  let cache = Cache.Incr.create ~dir in
  check_report ~what:"post-fault cold" ~reference (run ~cache input);
  let warm = run ~cache input in
  Alcotest.(check bool) "post-fault warm" true warm.Cache.Incr.i_from_cache

(* ------------------------------------------------------------------ *)
(* Dirty-set closure: a callee edit invalidates its transitive        *)
(* callers' summaries; untouched siblings keep theirs                 *)
(* ------------------------------------------------------------------ *)

let closure_unit ~c_body =
  Printf.sprintf
    {|class Chain {
        static String top(String s) { return Chain.mid(s); }
        static String mid(String s) { return Chain.deep(s); }
        static String deep(String s) { %s }
      }
      class Sibling {
        static String pass(String s) { return s; }
      }
      class ClosureServlet extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          String x = req.getParameter("q");
          resp.getWriter().println(Chain.top(x));
          resp.getWriter().println(Sibling.pass(x));
        }
      }|}
    c_body

let closure_input ~c_body =
  { Taj.name = "closure"; app_sources = [ closure_unit ~c_body ];
    descriptor = "" }

let counter_value name =
  match Obs.Telemetry.find_value name with
  | Some (Obs.Telemetry.V_counter n) -> n
  | _ -> 0

let test_dirty_closure () =
  Obs.Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Telemetry.disable ();
      Obs.Telemetry.reset ())
  @@ fun () ->
  with_dir @@ fun dir ->
  let cache = Cache.Incr.create ~dir in
  let cold = run ~cache (closure_input ~c_body:"return s;") in
  Alcotest.(check bool) "closure cold completed" false
    cold.Cache.Incr.i_partial;
  Alcotest.(check int) "closure cold found the two flows" 2
    cold.Cache.Incr.i_issues;
  Obs.Telemetry.reset ();
  (* edit the deepest callee: Chain.deep, Chain.mid, Chain.top carry it
     in their call closures; Sibling.pass does not *)
  let edited =
    run ~cache (closure_input ~c_body:"String t = s; return t;")
  in
  Alcotest.(check bool) "closure edit re-analyzes" false
    edited.Cache.Incr.i_from_cache;
  Alcotest.(check int) "closure edit keeps both flows" 2
    edited.Cache.Incr.i_issues;
  Alcotest.(check int)
    "exactly the three transitive callers of the edit are invalidated" 3
    (counter_value "cache.summary.invalidated");
  Alcotest.(check bool) "the untouched sibling's summary survives" true
    (counter_value "cache.summary.hit" >= 1)

(* ------------------------------------------------------------------ *)
(* Def/use summary round-trip through the builder hooks               *)
(* ------------------------------------------------------------------ *)

let test_defuse_roundtrip () =
  let input = input_of ~name_suffix:"-defuse" "ST" in
  let loaded = Taj.load input in
  let config = Config.preset Config.Hybrid_unbounded in
  let report_of analysis =
    match analysis.Taj.result with
    | Taj.Completed c -> Cache.Incr.render_report c.Taj.builder c.Taj.report
    | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
  in
  let baseline = report_of (Taj.run loaded config) in
  (* first cached run records every summary; the second run is forced to
     materialize all of them instead of building its own indexes *)
  let tbl = Hashtbl.create 64 in
  let key (m : Jir.Tac.meth) = Digest.string (Marshal.to_string m []) in
  let recording =
    { Sdg.Builder.dc_lookup = (fun _ -> None);
      dc_store = (fun m sum -> Hashtbl.replace tbl (key m) sum) }
  in
  let replaying =
    { Sdg.Builder.dc_lookup = (fun m -> Hashtbl.find_opt tbl (key m));
      dc_store = (fun _ _ -> Alcotest.fail "unexpected summary rebuild") }
  in
  let with_defuse defuse =
    report_of
      (Taj.run
         ~cache:{ Cache_iface.none with Cache_iface.defuse = Some defuse }
         loaded config)
  in
  Alcotest.(check string) "recording run is byte-identical" baseline
    (with_defuse recording);
  Alcotest.(check bool) "summaries were recorded" true
    (Hashtbl.length tbl > 0);
  Alcotest.(check string) "replayed summaries are byte-identical" baseline
    (with_defuse replaying)

let suite =
  [ Alcotest.test_case "frame detects damage" `Quick
      test_frame_detects_damage;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "cache equivalence across Table 2" `Slow
      test_equivalence_suite;
    Alcotest.test_case "truncated store falls back cold" `Quick
      test_truncated_store;
    Alcotest.test_case "bit-flipped store falls back cold" `Quick
      test_bitflipped_store;
    Alcotest.test_case "version-bumped store falls back cold" `Quick
      test_version_bumped_store;
    Alcotest.test_case "cache:read fault falls back cold" `Quick
      test_read_fault_falls_back_cold;
    Alcotest.test_case "cache:write fault only costs warmth" `Quick
      test_write_fault_only_costs_warmth;
    Alcotest.test_case "dirty-set closure invalidation" `Quick
      test_dirty_closure;
    Alcotest.test_case "def/use summary replay" `Quick
      test_defuse_roundtrip ]
