(* Tests for the access-path flow-refinement pass: replay units, the
   heap-merge demotion that motivates it, k-limit widening, budget
   demotion, and jobs=1 vs jobs=N determinism. *)

open Core

(* ------------------------------------------------------------------ *)
(* Access-path domain units                                           *)
(* ------------------------------------------------------------------ *)

let f name = { Pointer.Keys.fclass = "C"; fname = name }

let test_access_path_push () =
  let open Sdg.Access_path in
  Alcotest.(check bool) "empty is empty" true (is_empty empty);
  (match push ~k:2 (f "a") empty with
   | None -> Alcotest.fail "push within k returned None"
   | Some p ->
     Alcotest.(check int) "length 1" 1 (length p);
     (match push ~k:2 (f "b") p with
      | None -> Alcotest.fail "push at k returned None"
      | Some p2 ->
        Alcotest.(check int) "length 2" 2 (length p2);
        (* the k-limit: a third push must overflow *)
        Alcotest.(check bool) "overflow at k" true
          (push ~k:2 (f "c") p2 = None)))

let test_access_path_project () =
  let open Sdg.Access_path in
  let p =
    match push ~k:3 (f "v") empty with
    | Some p -> (match push ~k:3 (f "a") p with
        | Some p -> p
        | None -> Alcotest.fail "push")
    | None -> Alcotest.fail "push"
  in
  (* outermost-first: head is the last-pushed (outer) field *)
  (match head p with
   | Some h -> Alcotest.(check string) "head" "a" h.Pointer.Keys.fname
   | None -> Alcotest.fail "no head");
  (match project (f "a") p with
   | Some rest ->
     Alcotest.(check int) "projected length" 1 (length rest);
     (match head rest with
      | Some h -> Alcotest.(check string) "inner" "v" h.Pointer.Keys.fname
      | None -> Alcotest.fail "no inner head")
   | None -> Alcotest.fail "project on matching field failed");
  Alcotest.(check bool) "project mismatch" true (project (f "x") p = None);
  Alcotest.(check string) "pp empty" "\xce\xb5"
    (Fmt.str "%a" pp empty)

(* ------------------------------------------------------------------ *)
(* Pipeline helpers                                                   *)
(* ------------------------------------------------------------------ *)

let analyze ?(jobs = 1) ?(refine = true) ?(refine_k = 3)
    ?(refine_steps = 4096) srcs =
  let loaded =
    Taj.load ~jobs { Taj.name = "refine"; app_sources = srcs; descriptor = "" }
  in
  let config =
    { (Config.preset Config.Hybrid_unbounded) with
      Config.refine; refine_k; refine_steps }
  in
  match (Taj.run ~jobs loaded config).Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let verdict_of (c : Taj.completed) (ir : Report.issue_report) =
  ignore c;
  ir.Report.ir_verdict

let sink_method (c : Taj.completed) (ir : Report.issue_report) =
  let stmt = ir.Report.ir_representative.Flows.fl_sink in
  (Sdg.Builder.node_meth c.Taj.builder stmt.Sdg.Stmt.node).Jir.Tac.m_name

let is_confirmed = function Some Sdg.Refine.Confirmed -> true | _ -> false

let is_plausible = function
  | Some (Sdg.Refine.Plausible _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Replay verdicts                                                    *)
(* ------------------------------------------------------------------ *)

let test_direct_flow_confirmed () =
  let c =
    analyze
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(req.getParameter("x"));
            }
          }|} ]
  in
  match c.Taj.report.Report.issues with
  | [ ir ] ->
    Alcotest.(check bool) "direct flow is Confirmed" true
      (is_confirmed (verdict_of c ir))
  | irs -> Alcotest.failf "expected 1 issue, got %d" (List.length irs)

(* The paper's motivating false positive: two Box allocations share one
   allocation site through a factory, so the flow-insensitive heap model
   merges them and reports the untainted read too. Replay through access
   paths keeps the real flow (Confirmed) and demotes the fake (Plausible),
   so the Confirmed subset has strictly fewer FPs than the full report. *)
let heap_merge_src =
  {|class Box1 {
      String v;
    }
    class BoxMaker1 {
      static Box1 make(String s) {
        Box1 b = new Box1();
        b.v = s;
        return b;
      }
    }
    class HM extends HttpServlet {
      void emitR(PrintWriter w, String x) { w.println(x); }
      void emitF(PrintWriter w, String x) { w.println(x); }
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        PrintWriter w = resp.getWriter();
        Box1 a = BoxMaker1.make(req.getParameter("h1"));
        Box1 b = BoxMaker1.make("fixed");
        this.emitR(w, a.v);
        this.emitF(w, b.v);
      }
    }|}

let test_heap_merge_demoted () =
  let c = analyze [ heap_merge_src ] in
  let issues = c.Taj.report.Report.issues in
  Alcotest.(check int) "both flows still reported" 2 (List.length issues);
  let find name =
    match List.find_opt (fun ir -> sink_method c ir = name) issues with
    | Some ir -> ir
    | None -> Alcotest.failf "no issue with sink in %s" name
  in
  Alcotest.(check bool) "real flow Confirmed" true
    (is_confirmed (verdict_of c (find "emitR")));
  Alcotest.(check bool) "merged FP demoted to Plausible" true
    (is_plausible (verdict_of c (find "emitF")))

let test_demote_never_drop () =
  (* same source, refinement off vs on: identical issue count *)
  let off = analyze ~refine:false [ heap_merge_src ] in
  let on = analyze [ heap_merge_src ] in
  Alcotest.(check int) "no issue lost to refinement"
    (Report.issue_count off.Taj.report)
    (Report.issue_count on.Taj.report)

let test_carrier_flow_confirmed () =
  (* taint travels through a collection: the sink receives the carrier,
     and the replay confirms via the carrier-store witness *)
  let c =
    analyze
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Vector v = new Vector();
              v.add(req.getParameter("x"));
              String s = (String) v.get(0);
              resp.getWriter().println(s);
            }
          }|} ]
  in
  match c.Taj.report.Report.issues with
  | [] -> Alcotest.fail "no issues"
  | irs ->
    Alcotest.(check bool) "container flow Confirmed" true
      (List.exists (fun ir -> is_confirmed (verdict_of c ir)) irs)

(* ------------------------------------------------------------------ *)
(* k-limit widening and budgets                                       *)
(* ------------------------------------------------------------------ *)

let deep_src =
  {|class N1 { String v; }
    class N2 { N1 a; }
    class N3 { N2 b; }
    class N4 { N3 c; }
    class Deep extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        N1 n1 = new N1();
        N2 n2 = new N2();
        N3 n3 = new N3();
        N4 n4 = new N4();
        n1.v = req.getParameter("x");
        n2.a = n1;
        n3.b = n2;
        n4.c = n3;
        N3 c3 = n4.c;
        N2 c2 = c3.b;
        N1 c1 = c2.a;
        resp.getWriter().println(c1.v);
      }
    }|}

let test_k_limit_widening () =
  (* the chain needs 4 access-path fields; k=2 must widen (Plausible),
     k=8 replays it exactly (Confirmed) — either way the issue is kept *)
  let small = analyze ~refine_k:2 [ deep_src ] in
  let large = analyze ~refine_k:8 [ deep_src ] in
  (match small.Taj.report.Report.issues with
   | [ ir ] ->
     Alcotest.(check bool) "k=2 demotes" true
       (is_plausible (verdict_of small ir))
   | irs -> Alcotest.failf "k=2: expected 1 issue, got %d" (List.length irs));
  (match large.Taj.report.Report.issues with
   | [ ir ] ->
     Alcotest.(check bool) "k=8 confirms" true
       (is_confirmed (verdict_of large ir))
   | irs -> Alcotest.failf "k=8: expected 1 issue, got %d" (List.length irs));
  match small.Taj.outcome.Engine.refined with
  | Some rf ->
    Alcotest.(check bool) "widening counted" true (rf.Engine.rf_widened > 0)
  | None -> Alcotest.fail "refine summary missing"

let test_budget_exhaustion_demotes () =
  (* a one-step budget cannot reach any sink: every flow must come back
     Plausible, and none may be dropped *)
  let c = analyze ~refine_steps:1 [ heap_merge_src ] in
  let issues = c.Taj.report.Report.issues in
  Alcotest.(check int) "issues kept under exhaustion" 2 (List.length issues);
  List.iter
    (fun ir ->
       Alcotest.(check bool) "exhausted replay demotes" true
         (is_plausible (verdict_of c ir)))
    issues;
  match c.Taj.outcome.Engine.refined with
  | Some rf ->
    Alcotest.(check int) "nothing confirmed" 0 rf.Engine.rf_confirmed;
    Alcotest.(check bool) "budget trips recorded" true
      (rf.Engine.rf_budget > 0)
  | None -> Alcotest.fail "refine summary missing"

(* ------------------------------------------------------------------ *)
(* Determinism                                                        *)
(* ------------------------------------------------------------------ *)

let test_parallel_determinism () =
  (* verdicts and report rendering must be byte-identical whether the
     refine stage runs on one domain or four *)
  let a = Option.get (Workloads.Apps.find "Friki") in
  let g = Workloads.Apps.generate ~scale:0.02 a in
  let run jobs =
    let loaded = Taj.load ~jobs (Workloads.Codegen.to_input g) in
    let config =
      { (Config.preset ~scale:0.02 Config.Hybrid_unbounded) with
        Config.refine = true }
    in
    match (Taj.run ~jobs loaded config).Taj.result with
    | Taj.Completed c ->
      Fmt.str "%a" (Report.pp c.Taj.builder) c.Taj.report
    | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
  in
  Alcotest.(check string) "jobs=1 == jobs=4" (run 1) (run 4)

let suite =
  [ Alcotest.test_case "access-path push/k-limit" `Quick
      test_access_path_push;
    Alcotest.test_case "access-path project" `Quick test_access_path_project;
    Alcotest.test_case "direct flow confirmed" `Quick
      test_direct_flow_confirmed;
    Alcotest.test_case "heap-merge FP demoted" `Quick test_heap_merge_demoted;
    Alcotest.test_case "demote never drop" `Quick test_demote_never_drop;
    Alcotest.test_case "carrier flow confirmed" `Quick
      test_carrier_flow_confirmed;
    Alcotest.test_case "k-limit widening" `Quick test_k_limit_widening;
    Alcotest.test_case "budget exhaustion demotes" `Quick
      test_budget_exhaustion_demotes;
    Alcotest.test_case "parallel determinism" `Quick
      test_parallel_determinism ]
