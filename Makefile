.PHONY: all build test bench fmt check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

# dune build @fmt needs ocamlformat + an .ocamlformat file; skip gracefully
# where the tool is absent so `make check` works in every environment
fmt:
	@if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not available; skipping format check"; \
	fi

check: build test fmt

clean:
	dune clean
